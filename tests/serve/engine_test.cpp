// InferenceEngine unit contract: construction, validation, default-model
// resolution, micro-batch flush triggers (size and deadline),
// snapshot/version attribution, typed top-k/score requests, stats, and
// shutdown semantics. Plus the SnapshotSlot and line-protocol v2 contracts.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <vector>

#include "hd/encoder.hpp"
#include "hd/model.hpp"
#include "serve/inference_engine.hpp"
#include "serve/line_protocol.hpp"
#include "serve/model_registry.hpp"
#include "serve/model_snapshot.hpp"
#include "util/rng.hpp"

namespace disthd::serve {
namespace {

constexpr std::size_t kFeatures = 6;
constexpr std::size_t kDim = 32;
constexpr std::size_t kClasses = 3;

core::HdcClassifier make_classifier(std::uint64_t seed) {
  auto encoder = std::make_unique<hd::RbfEncoder>(kFeatures, kDim, seed);
  hd::ClassModel model(kClasses, kDim);
  util::Rng rng(seed ^ 0xABC);
  model.mutable_class_vectors().fill_normal(rng, 0.0, 1.0);
  model.refresh_norms();
  return core::HdcClassifier(std::move(encoder), std::move(model));
}

std::vector<float> query(std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> features(kFeatures);
  for (auto& f : features) f = static_cast<float>(rng.normal());
  return features;
}

/// Registry holding one published model named "m".
class SingleModelRegistry {
public:
  explicit SingleModelRegistry(std::uint64_t seed = 1) {
    registry.register_model("m").publish(make_classifier(seed));
  }
  ModelRegistry registry;
};

TEST(SnapshotSlot, VersionsAreAssignedInPublishOrder) {
  SnapshotSlot slot;
  EXPECT_EQ(slot.current(), nullptr);
  EXPECT_EQ(slot.latest_version(), 0u);
  EXPECT_EQ(slot.publish(make_classifier(1)), 1u);
  EXPECT_EQ(slot.publish(make_classifier(2)), 2u);
  ASSERT_NE(slot.current(), nullptr);
  EXPECT_EQ(slot.current()->version, 2u);
  EXPECT_EQ(slot.latest_version(), 2u);
}

TEST(SnapshotSlot, ReadersKeepOldSnapshotsAlive) {
  SnapshotSlot slot;
  slot.publish(make_classifier(1));
  const auto old_snapshot = slot.current();
  slot.publish(make_classifier(2));
  // The superseded snapshot stays fully usable for readers holding it.
  EXPECT_EQ(old_snapshot->version, 1u);
  EXPECT_EQ(old_snapshot->classifier.num_features(), kFeatures);
  const auto q = query(7);
  (void)old_snapshot->classifier.predict(q);
}

TEST(SnapshotSlot, SnapshotPrenormalizesClassVectors) {
  SnapshotSlot slot;
  slot.publish(make_classifier(3));
  const auto snapshot = slot.current();
  // The hoisted normalization equals the per-call copy bit-for-bit.
  EXPECT_EQ(snapshot->normalized_class_vectors,
            snapshot->classifier.model().normalized_class_vectors());
  EXPECT_FALSE(snapshot->has_scaler());
}

TEST(SnapshotSlot, SnapshotCarriesAndValidatesScaler) {
  SnapshotSlot slot;
  const std::vector<float> offset(kFeatures, 1.0f);
  const std::vector<float> scale(kFeatures, 0.5f);
  slot.publish(make_classifier(3), offset, scale);
  const auto snapshot = slot.current();
  ASSERT_TRUE(snapshot->has_scaler());
  util::Matrix features(1, kFeatures, 3.0f);
  snapshot->apply_scaler(features);
  for (std::size_t c = 0; c < kFeatures; ++c) {
    EXPECT_FLOAT_EQ(features(0, c), 1.0f);  // (3 - 1) * 0.5
  }
  // Wrong-sized scalers are rejected at publish.
  EXPECT_THROW(slot.publish(make_classifier(3),
                            std::vector<float>(kFeatures - 1, 0.0f),
                            std::vector<float>(kFeatures - 1, 1.0f)),
               std::invalid_argument);
  EXPECT_THROW(slot.publish(make_classifier(3), offset,
                            std::vector<float>(kFeatures - 1, 1.0f)),
               std::invalid_argument);
}

TEST(InferenceEngine, RequiresNonEmptyRegistry) {
  ModelRegistry empty;
  EXPECT_THROW(InferenceEngine(empty, {}), std::invalid_argument);
}

TEST(InferenceEngine, SubmitToUnpublishedModelThrows) {
  ModelRegistry registry;
  registry.register_model("m");  // registered but never published
  InferenceEngine engine(registry);
  EXPECT_THROW(engine.predict(query(1)), std::runtime_error);
}

TEST(InferenceEngine, ValidatesConfig) {
  SingleModelRegistry fixture;
  InferenceEngineConfig bad;
  bad.max_batch = 0;
  EXPECT_THROW(InferenceEngine(fixture.registry, bad), std::invalid_argument);
  bad = {};
  bad.workers = 0;
  EXPECT_THROW(InferenceEngine(fixture.registry, bad), std::invalid_argument);
  bad = {};
  bad.queue_capacity = 3;
  bad.max_batch = 8;
  EXPECT_THROW(InferenceEngine(fixture.registry, bad), std::invalid_argument);
  bad = {};
  bad.default_model = "no-such-model";
  EXPECT_THROW(InferenceEngine(fixture.registry, bad), std::invalid_argument);
}

TEST(InferenceEngine, ResolvesDefaultModel) {
  SingleModelRegistry fixture;
  // Sole registered model becomes the default implicitly.
  InferenceEngine sole(fixture.registry);
  EXPECT_EQ(sole.default_model(), "m");

  ModelRegistry two;
  two.register_model("a").publish(make_classifier(1));
  two.register_model("b").publish(make_classifier(2));
  // Ambiguous: no implicit default, requests must name their model.
  InferenceEngine ambiguous(two);
  EXPECT_EQ(ambiguous.default_model(), "");
  EXPECT_THROW(ambiguous.predict(query(1)), std::invalid_argument);
  PredictRequest named;
  named.model = "b";
  named.features = query(1);
  EXPECT_EQ(ambiguous.predict(std::move(named)).version, 1u);

  InferenceEngineConfig config;
  config.default_model = "a";
  InferenceEngine explicit_default(two, config);
  EXPECT_EQ(explicit_default.default_model(), "a");
  (void)explicit_default.predict(query(1));  // routes to "a"
}

TEST(InferenceEngine, RejectsWrongFeatureCountAndUnknownModel) {
  SingleModelRegistry fixture;
  InferenceEngine engine(fixture.registry);
  std::vector<float> short_query(kFeatures - 1, 0.0f);
  EXPECT_THROW(engine.submit(short_query), std::invalid_argument);
  PredictRequest unknown;
  unknown.model = "ghost";
  unknown.features = query(1);
  EXPECT_THROW(engine.submit(std::move(unknown)), std::invalid_argument);
  PredictRequest zero_k;
  zero_k.features = query(1);
  zero_k.top_k = 0;
  EXPECT_THROW(engine.submit(std::move(zero_k)), std::invalid_argument);
}

TEST(InferenceEngine, SinglePredictMatchesClassifier) {
  SingleModelRegistry fixture(3);
  InferenceEngine engine(fixture.registry);
  const auto q = query(11);
  const auto result = engine.predict(q);
  EXPECT_EQ(result.version, 1u);
  ASSERT_EQ(result.top.size(), 1u);
  EXPECT_TRUE(result.scores.empty());
  util::Matrix one_row(1, kFeatures);
  std::copy(q.begin(), q.end(), one_row.row(0).begin());
  const auto snapshot = fixture.registry.current("m");
  EXPECT_EQ(result.label(),
            snapshot->classifier.predict_batch(one_row).front());
}

TEST(InferenceEngine, TopKClampsToClassCountAndRanksDescending) {
  SingleModelRegistry fixture(5);
  InferenceEngine engine(fixture.registry);
  PredictRequest request;
  request.features = query(2);
  request.top_k = kClasses + 10;  // clamped
  request.want_scores = true;
  const auto result = engine.predict(std::move(request));
  ASSERT_EQ(result.top.size(), kClasses);
  ASSERT_EQ(result.scores.size(), kClasses);
  for (std::size_t rank = 1; rank < result.top.size(); ++rank) {
    EXPECT_GE(result.top[rank - 1].score, result.top[rank].score);
  }
  // The ranked pairs are a reordering of the full score vector.
  for (const auto& ranked : result.top) {
    EXPECT_EQ(ranked.score,
              result.scores[static_cast<std::size_t>(ranked.label)]);
  }
}

TEST(InferenceEngine, MixedShapesShareOneBatch) {
  SingleModelRegistry fixture(4);
  InferenceEngineConfig config;
  config.max_batch = 3;
  config.flush_deadline = std::chrono::milliseconds(50);
  InferenceEngine engine(fixture.registry, config);
  // One top-1, one top-2, one full-vector request, batched together.
  PredictRequest top2;
  top2.features = query(9);
  top2.top_k = 2;
  PredictRequest full;
  full.features = query(9);
  full.want_scores = true;
  auto f1 = engine.submit(query(9));
  auto f2 = engine.submit(std::move(top2));
  auto f3 = engine.submit(std::move(full));
  const auto r1 = f1.get();
  const auto r2 = f2.get();
  const auto r3 = f3.get();
  ASSERT_EQ(r1.top.size(), 1u);
  ASSERT_EQ(r2.top.size(), 2u);
  ASSERT_EQ(r3.scores.size(), kClasses);
  // Same query row, same snapshot: identical top-1 everywhere.
  EXPECT_EQ(r1.label(), r2.label());
  EXPECT_EQ(r1.label(), r3.label());
  EXPECT_EQ(r1.score(), r2.score());
  EXPECT_EQ(r1.score(), r3.scores[static_cast<std::size_t>(r3.label())]);
}

TEST(InferenceEngine, FullBatchForOneModelFlushesWhileWorkerCollectsAnother) {
  // Regression: with every worker topping up a partial batch for model B
  // under a long flush deadline, a FULL batch for model A must still flush
  // promptly (the full-batch signal breaks the collection wait like a
  // deadline would) — not sit until B's deadline fires.
  ModelRegistry registry;
  registry.register_model("a").publish(make_classifier(1));
  registry.register_model("b").publish(make_classifier(2));
  InferenceEngineConfig config;
  config.max_batch = 2;
  config.workers = 1;
  config.flush_deadline = std::chrono::seconds(60);
  InferenceEngine engine(registry, config);

  PredictRequest for_b;
  for_b.model = "b";
  for_b.features = query(1);
  auto b_future = engine.submit(std::move(for_b));
  // Give the worker a moment to claim b's partial batch and start waiting.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  std::vector<std::future<PredictResult>> a_futures;
  for (int i = 0; i < 2; ++i) {  // fills a's batch
    PredictRequest for_a;
    for_a.model = "a";
    for_a.features = query(10 + i);
    a_futures.push_back(engine.submit(std::move(for_a)));
  }
  for (auto& future : a_futures) {
    ASSERT_EQ(future.wait_for(std::chrono::seconds(20)),
              std::future_status::ready);
    EXPECT_EQ(future.get().version, 1u);
  }
  // b's request rides out on the same wake-up (partial flush), far before
  // its 60 s deadline.
  ASSERT_EQ(b_future.wait_for(std::chrono::seconds(20)),
            std::future_status::ready);
  engine.shutdown();
}

TEST(InferenceEngine, DeadlineFlushesPartialBatch) {
  SingleModelRegistry fixture(3);
  InferenceEngineConfig config;
  config.max_batch = 1000;  // never reached
  config.queue_capacity = 1024;
  config.flush_deadline = std::chrono::microseconds(500);
  InferenceEngine engine(fixture.registry, config);
  // A single request must be answered without 999 peers arriving.
  const auto result = engine.predict(query(1));
  EXPECT_EQ(result.version, 1u);
  EXPECT_EQ(engine.stats().requests, 1u);
}

TEST(InferenceEngine, BatchSizeFlushesBeforeDeadline) {
  SingleModelRegistry fixture(3);
  InferenceEngineConfig config;
  config.max_batch = 4;
  // A deadline long enough that only the size trigger can flush this fast.
  config.flush_deadline = std::chrono::seconds(60);
  InferenceEngine engine(fixture.registry, config);
  std::vector<std::future<PredictResult>> futures;
  for (int i = 0; i < 8; ++i) futures.push_back(engine.submit(query(i)));
  for (auto& future : futures) (void)future.get();
  const auto stats = engine.stats();
  EXPECT_EQ(stats.requests, 8u);
  EXPECT_LE(stats.batches, 4u);  // at least two size-triggered flushes
  EXPECT_GE(stats.largest_batch, 2u);
}

TEST(InferenceEngine, ResponsesCarryLatestSnapshotVersion) {
  SingleModelRegistry fixture(3);
  InferenceEngine engine(fixture.registry);
  EXPECT_EQ(engine.predict(query(1)).version, 1u);
  fixture.registry.find("m")->publish(make_classifier(4));
  EXPECT_EQ(engine.predict(query(1)).version, 2u);
}

TEST(InferenceEngine, ServesModelRegisteredAfterConstruction) {
  ModelRegistry registry;
  registry.register_model("first").publish(make_classifier(1));
  InferenceEngine engine(registry);
  registry.register_model("late").publish(make_classifier(2));
  PredictRequest request;
  request.model = "late";
  request.features = query(5);
  EXPECT_EQ(engine.predict(std::move(request)).version, 1u);
}

TEST(InferenceEngine, ShutdownDrainsPendingAndRejectsNewSubmits) {
  SingleModelRegistry fixture(3);
  InferenceEngineConfig config;
  config.max_batch = 64;
  config.flush_deadline = std::chrono::milliseconds(50);
  InferenceEngine engine(fixture.registry, config);
  std::vector<std::future<PredictResult>> futures;
  for (int i = 0; i < 32; ++i) futures.push_back(engine.submit(query(i)));
  engine.shutdown();  // must serve all 32, not drop them
  for (auto& future : futures) {
    EXPECT_EQ(future.get().version, 1u);
  }
  EXPECT_EQ(engine.stats().requests, 32u);
  EXPECT_THROW(engine.submit(query(0)), std::runtime_error);
  engine.shutdown();  // idempotent
}

TEST(LineProtocol, ParsesFeaturesSkipsBlanksAndComments) {
  std::vector<float> features;
  EXPECT_FALSE(parse_feature_line("", features));
  EXPECT_FALSE(parse_feature_line("   ", features));
  EXPECT_FALSE(parse_feature_line("# comment", features));
  ASSERT_TRUE(parse_feature_line("1.5,-2,0.25", features));
  ASSERT_EQ(features.size(), 3u);
  EXPECT_FLOAT_EQ(features[0], 1.5f);
  EXPECT_FLOAT_EQ(features[1], -2.0f);
  EXPECT_FLOAT_EQ(features[2], 0.25f);
  // Unparsable cells become 0, mirroring disthd_predict's NaN policy.
  ASSERT_TRUE(parse_feature_line("1,abc,3", features));
  EXPECT_FLOAT_EQ(features[1], 0.0f);
  EXPECT_THROW(parse_feature_line("1,2", features, 3), std::runtime_error);
}

TEST(LineProtocol, V1LinesParseWithDirectiveDefaults) {
  ParsedRequest request;
  EXPECT_FALSE(parse_request_line("", request));
  EXPECT_FALSE(parse_request_line("# comment", request));
  ASSERT_TRUE(parse_request_line("1.5,-2,0.25", request));
  EXPECT_EQ(request.model, "");
  EXPECT_EQ(request.top_k, 1u);
  EXPECT_FALSE(request.want_scores);
  ASSERT_EQ(request.features.size(), 3u);
  EXPECT_FLOAT_EQ(request.features[1], -2.0f);
}

TEST(LineProtocol, V2DirectivesRouteAndShapeTheRequest) {
  ParsedRequest request;
  ASSERT_TRUE(
      parse_request_line("model=mnist topk=2 scores=1|0.5,1.5", request));
  EXPECT_EQ(request.model, "mnist");
  EXPECT_EQ(request.top_k, 2u);
  EXPECT_TRUE(request.want_scores);
  ASSERT_EQ(request.features.size(), 2u);
  EXPECT_FLOAT_EQ(request.features[0], 0.5f);

  ASSERT_TRUE(parse_request_line("topk=3|1,2", request));
  EXPECT_EQ(request.model, "");
  EXPECT_EQ(request.top_k, 3u);
  EXPECT_FALSE(request.want_scores);

  // Directive state never leaks between lines.
  ASSERT_TRUE(parse_request_line("1,2", request));
  EXPECT_EQ(request.top_k, 1u);
}

TEST(LineProtocol, StatsVerbParsesWithOptionalModel) {
  ParsedRequest request;
  ASSERT_TRUE(parse_request_line("stats", request));
  EXPECT_EQ(request.kind, RequestKind::stats);
  EXPECT_EQ(request.model, "");  // all served models
  EXPECT_TRUE(request.features.empty());

  ASSERT_TRUE(parse_request_line("  stats model=pamap2  ", request));
  EXPECT_EQ(request.kind, RequestKind::stats);
  EXPECT_EQ(request.model, "pamap2");

  // Verb state never leaks into the next parsed line.
  ASSERT_TRUE(parse_request_line("1,2", request));
  EXPECT_EQ(request.kind, RequestKind::predict);

  // Only model= is meaningful on a stats line.
  EXPECT_THROW(parse_request_line("stats topk=2", request),
               std::runtime_error);
  EXPECT_THROW(parse_request_line("stats model=", request),
               std::runtime_error);
  // "statsy,1,2" is NOT the verb — it is a (zero-parsing) feature row.
  ASSERT_TRUE(parse_request_line("statsy,1,2", request));
  EXPECT_EQ(request.kind, RequestKind::predict);
}

TEST(LineProtocol, RejectsMalformedDirectives) {
  ParsedRequest request;
  EXPECT_THROW(parse_request_line("model=|1,2", request), std::runtime_error);
  EXPECT_THROW(parse_request_line("topk=0|1,2", request), std::runtime_error);
  EXPECT_THROW(parse_request_line("topk=abc|1,2", request),
               std::runtime_error);
  EXPECT_THROW(parse_request_line("scores=2|1,2", request),
               std::runtime_error);
  EXPECT_THROW(parse_request_line("frobnicate=1|1,2", request),
               std::runtime_error);
  EXPECT_THROW(parse_request_line("model=a|", request), std::runtime_error);
  EXPECT_THROW(parse_request_line("model|1,2", request), std::runtime_error);
  EXPECT_THROW(parse_request_line("1,2", request, 3), std::runtime_error);
}

TEST(LineProtocol, FormatsResults) {
  PredictResult top1;
  top1.version = 17;
  top1.top.push_back({4, 0.87654f});
  // topk=1, no scores: exactly the v1 "version,label,score" line.
  EXPECT_EQ(format_result(top1), "17,4,0.8765");

  PredictResult top2;
  top2.version = 3;
  top2.top.push_back({1, 0.9f});
  top2.top.push_back({0, 0.25f});
  EXPECT_EQ(format_result(top2), "3,1,0.9000,0,0.2500");

  PredictResult with_scores = top2;
  with_scores.scores = {0.25f, 0.9f, -0.125f};
  EXPECT_EQ(format_result(with_scores),
            "3,1,0.9000,0,0.2500|0.2500,0.9000,-0.1250");

  EXPECT_STREQ(response_header(), "#proto=2 version,label,score");
}

}  // namespace
}  // namespace disthd::serve
