// Drift detection policy (serve/learn/drift.hpp).
//
// The detector is a pure threshold-with-hysteresis over the learner's own
// top-2 separability signal; these tables pin the gating rules the training
// plane relies on: disabled by default, silent below min_rows, silent
// inside the cooldown window, and firing exactly at the threshold.
#include <gtest/gtest.h>

#include "serve/learn/drift.hpp"

namespace disthd::serve::learn {
namespace {

core::OnlineDriftSignal signal_of(std::size_t rows, double misled) {
  core::OnlineDriftSignal signal;
  signal.rows = rows;
  signal.misled_fraction = misled;
  return signal;
}

TEST(DriftConfig, NegativeThresholdDisablesAboveOneThrows) {
  DriftConfig config;  // default threshold -1: disabled
  EXPECT_NO_THROW(config.validate());
  EXPECT_FALSE(DriftDetector(config).enabled());

  config.threshold = 0.0;  // 0 fires on every eligible probe
  EXPECT_TRUE(DriftDetector(config).enabled());
  config.threshold = 1.0;
  EXPECT_NO_THROW(config.validate());

  config.threshold = 1.5;  // a fraction cannot exceed 1: config bug
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(DriftDetector, DisabledNeverFires) {
  DriftDetector detector(DriftConfig{});
  EXPECT_FALSE(detector.observe(signal_of(10000, 1.0), 10000));
}

TEST(DriftDetector, FiresAtThresholdNotBelow) {
  DriftConfig config;
  config.threshold = 0.5;
  config.min_rows = 1;
  DriftDetector detector(config);
  EXPECT_FALSE(detector.observe(signal_of(100, 0.49), 100));
  EXPECT_TRUE(detector.observe(signal_of(100, 0.5), 200));
}

TEST(DriftDetector, SmallReservoirIsNoise) {
  // A near-empty reservoir mislabels a huge fraction trivially; min_rows
  // keeps the plane from thrashing regenerations during warm-up.
  DriftConfig config;
  config.threshold = 0.1;
  config.min_rows = 32;
  DriftDetector detector(config);
  EXPECT_FALSE(detector.observe(signal_of(0, 0.0), 8));
  EXPECT_FALSE(detector.observe(signal_of(31, 1.0), 31));
  EXPECT_TRUE(detector.observe(signal_of(32, 1.0), 63));
}

TEST(DriftDetector, CooldownCountsTrainedRowsBetweenTriggers) {
  DriftConfig config;
  config.threshold = 0.2;
  config.min_rows = 1;
  config.cooldown_rows = 100;
  DriftDetector detector(config);
  EXPECT_TRUE(detector.observe(signal_of(50, 0.9), 1000));
  // Still drifting, but fewer than cooldown_rows trained since the trigger:
  // the regeneration it caused needs rehearsal rows before re-probing means
  // anything.
  EXPECT_FALSE(detector.observe(signal_of(50, 0.9), 1050));
  EXPECT_FALSE(detector.observe(signal_of(50, 0.9), 1099));
  EXPECT_TRUE(detector.observe(signal_of(50, 0.9), 1100));
}

TEST(DriftDetector, NoCooldownBeforeFirstTrigger) {
  DriftConfig config;
  config.threshold = 0.2;
  config.min_rows = 1;
  config.cooldown_rows = 1000000;  // must not gate the FIRST trigger
  DriftDetector detector(config);
  EXPECT_TRUE(detector.observe(signal_of(50, 0.9), 10));
}

}  // namespace
}  // namespace disthd::serve::learn
