// OnlineLearnerSlot (serve/learn/online_learner_slot.hpp): the bounded
// ingest ring + chunked trainer behind one model's train verb.
//
// The two load-bearing contracts proven here:
//   - bounded memory — the ring never holds more than buffer_capacity rows;
//     overload sheds the OLDEST rows and counts them, so what trains is
//     exactly the most recent window (verified against an oracle learner
//     fed only that window, bit-for-bit);
//   - chunk determinism — with full-chunk-only fits, the partial_fit
//     sequence depends only on arrival order and chunk_rows, so the slot
//     reproduces an offline OnlineDistHD + Scaler pipeline bit-for-bit
//     (the property the replay mode's byte-identical --save-bundle rests
//     on).
#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "core/online_trainer.hpp"
#include "data/normalize.hpp"
#include "data/synthetic.hpp"
#include "serve/learn/online_learner_slot.hpp"
#include "serve/model_registry.hpp"

namespace disthd::serve::learn {
namespace {

constexpr std::size_t kFeatures = 8;
constexpr std::size_t kClasses = 3;
constexpr std::size_t kDim = 48;

data::Dataset make_stream(std::size_t rows, std::uint64_t seed = 21) {
  data::SyntheticSpec spec;
  spec.num_features = kFeatures;
  spec.num_classes = kClasses;
  spec.train_size = rows;
  spec.test_size = 8;
  spec.latent_dim = 4;
  spec.seed = seed;
  return data::make_synthetic(spec).train;
}

OnlineLearnerConfig small_config() {
  OnlineLearnerConfig config;
  config.learner.dim = kDim;
  config.learner.seed = 5;
  config.learner.epochs_per_chunk = 1;
  config.learner.reservoir_capacity = 128;
  config.buffer_capacity = 64;
  config.chunk_rows = 8;
  return config;
}

void ingest_rows(OnlineLearnerSlot& slot, const data::Dataset& stream,
                 std::size_t begin, std::size_t end) {
  for (std::size_t i = begin; i < end; ++i) {
    slot.ingest(stream.features.row(i), stream.labels[i]);
  }
}

/// The offline pipeline the slot must reproduce: scaler fitted on the first
/// chunk, every chunk transformed then partial_fit, in order.
core::HdcClassifier oracle_fit(const data::Dataset& stream,
                               const OnlineLearnerConfig& config,
                               std::size_t rows) {
  core::OnlineDistHD learner(kFeatures, kClasses, config.learner);
  data::Scaler scaler(data::ScalerKind::min_max);
  for (std::size_t at = 0; at < rows; at += config.chunk_rows) {
    const std::size_t take = std::min(config.chunk_rows, rows - at);
    std::vector<std::size_t> picks(take);
    for (std::size_t i = 0; i < take; ++i) picks[i] = at + i;
    util::Matrix chunk = stream.features.gather_rows(picks);
    if (!scaler.fitted()) scaler.fit(chunk);
    scaler.transform(chunk);
    learner.partial_fit(
        chunk, std::span<const int>(stream.labels.data() + at, take));
  }
  return learner.snapshot();
}

/// Bit-for-bit classifier comparison through the scoring path both sides
/// share (raw probe rows; the snapshot applies its own scaler, the oracle
/// must be compared through an identically-scaled copy — score_raw covers
/// scaler + encoder + model at once).
void expect_same_scores(const ModelSnapshot& snapshot,
                        const core::HdcClassifier& oracle,
                        const data::Scaler& oracle_scaler,
                        const util::Matrix& probes) {
  util::Matrix raw = probes;
  util::Matrix encoded;
  util::Matrix got;
  snapshot.score_raw(raw, encoded, got);

  util::Matrix scaled = probes;
  oracle_scaler.transform(scaled);
  util::Matrix want;
  oracle.scores_batch(scaled, want);

  ASSERT_EQ(got.rows(), want.rows());
  ASSERT_EQ(got.cols(), want.cols());
  for (std::size_t r = 0; r < want.rows(); ++r) {
    for (std::size_t c = 0; c < want.cols(); ++c) {
      ASSERT_EQ(got(r, c), want(r, c)) << "row " << r << " class " << c;
    }
  }
}

data::Scaler first_chunk_scaler(const data::Dataset& stream,
                                std::size_t chunk_rows) {
  std::vector<std::size_t> picks(std::min(chunk_rows, stream.features.rows()));
  for (std::size_t i = 0; i < picks.size(); ++i) picks[i] = i;
  util::Matrix chunk = stream.features.gather_rows(picks);
  data::Scaler scaler(data::ScalerKind::min_max);
  scaler.fit(chunk);
  return scaler;
}

TEST(OnlineLearnerSlot, ConfigRejectsImpossibleShapes) {
  ModelRegistry registry;
  SnapshotSlot& snapshot_slot = registry.register_model("m");
  OnlineLearnerConfig config = small_config();
  config.chunk_rows = config.buffer_capacity + 1;  // a full chunk never forms
  EXPECT_THROW(
      OnlineLearnerSlot("m", snapshot_slot, kFeatures, kClasses, config),
      std::invalid_argument);
  config = small_config();
  config.publish_rows = 0;
  EXPECT_THROW(
      OnlineLearnerSlot("m", snapshot_slot, kFeatures, kClasses, config),
      std::invalid_argument);
}

TEST(OnlineLearnerSlot, IngestValidatesShapeAndLabel) {
  ModelRegistry registry;
  OnlineLearnerSlot slot("m", registry.register_model("m"), kFeatures,
                         kClasses, small_config());
  const std::vector<float> good(kFeatures, 0.5f);
  const std::vector<float> short_row(kFeatures - 1, 0.5f);
  EXPECT_EQ(slot.ingest(good, 0), 1u);
  EXPECT_EQ(slot.ingest(good, kClasses - 1), 2u);  // cumulative ack counter
  EXPECT_THROW(slot.ingest(short_row, 0), std::invalid_argument);
  EXPECT_THROW(slot.ingest(good, -1), std::invalid_argument);
  EXPECT_THROW(slot.ingest(good, static_cast<int>(kClasses)),
               std::invalid_argument);
  // Rejected rows never enter the ring (and never count as ingested).
  EXPECT_EQ(slot.stats().ingested_rows, 2u);
  EXPECT_EQ(slot.stats().buffer_rows, 2u);
}

TEST(OnlineLearnerSlot, FullChunksOnlyUntilFlush) {
  ModelRegistry registry;
  const OnlineLearnerConfig config = small_config();
  OnlineLearnerSlot slot("m", registry.register_model("m"), kFeatures,
                         kClasses, config);
  const auto stream = make_stream(config.chunk_rows + 3);

  ingest_rows(slot, stream, 0, config.chunk_rows - 1);
  EXPECT_FALSE(slot.has_work(OnlineLearnerSlot::Clock::now()));
  EXPECT_EQ(slot.train_once(/*full_only=*/true), 0u);  // 7 of 8: no fit

  ingest_rows(slot, stream, config.chunk_rows - 1, config.chunk_rows + 3);
  EXPECT_TRUE(slot.has_work(OnlineLearnerSlot::Clock::now()));
  EXPECT_EQ(slot.train_once(/*full_only=*/true), config.chunk_rows);
  EXPECT_EQ(slot.train_once(/*full_only=*/true), 0u);  // 3-row tail waits

  slot.flush();  // ...until a flush drains it as one partial chunk
  EXPECT_EQ(slot.stats().trained_rows, config.chunk_rows + 3);
  EXPECT_EQ(slot.stats().buffer_rows, 0u);
}

TEST(OnlineLearnerSlot, ChunkedFitMatchesOfflineOracleBitForBit) {
  ModelRegistry registry;
  SnapshotSlot& snapshot_slot = registry.register_model("m");
  const OnlineLearnerConfig config = small_config();
  // 3 full chunks + a 5-row tail, with regeneration in play (every 2nd
  // chunk) — the hard case for determinism.
  const std::size_t rows = config.chunk_rows * 3 + 5;
  const auto stream = make_stream(rows);

  OnlineLearnerSlot slot("m", snapshot_slot, kFeatures, kClasses, config);
  ingest_rows(slot, stream, 0, rows);
  while (slot.train_once(/*full_only=*/true) > 0) {
  }
  slot.flush();

  const auto snapshot = snapshot_slot.current();
  ASSERT_NE(snapshot, nullptr);
  const auto oracle = oracle_fit(stream, config, rows);
  const auto scaler = first_chunk_scaler(stream, config.chunk_rows);
  expect_same_scores(*snapshot, oracle, scaler,
                     make_stream(8, /*seed=*/99).features);
}

TEST(OnlineLearnerSlot, OverflowDropsOldestAndTrainsTheRecentWindow) {
  ModelRegistry registry;
  SnapshotSlot& snapshot_slot = registry.register_model("m");
  OnlineLearnerConfig config = small_config();
  config.buffer_capacity = 16;
  config.chunk_rows = 8;
  const std::size_t rows = 40;  // 24 rows must shed
  const auto stream = make_stream(rows);

  OnlineLearnerSlot slot("m", snapshot_slot, kFeatures, kClasses, config);
  ingest_rows(slot, stream, 0, rows);  // no trainer pops: ring overflows
  const auto stats = slot.stats();
  EXPECT_EQ(stats.ingested_rows, rows);
  EXPECT_EQ(stats.dropped_rows, rows - config.buffer_capacity);
  EXPECT_EQ(stats.buffer_rows, config.buffer_capacity);  // the memory bound

  slot.flush();
  EXPECT_EQ(slot.stats().trained_rows, config.buffer_capacity);

  // What trained is exactly the most recent window — prove it against an
  // oracle fed only rows [24, 40).
  data::Dataset window;
  std::vector<std::size_t> picks(config.buffer_capacity);
  for (std::size_t i = 0; i < picks.size(); ++i) {
    picks[i] = rows - config.buffer_capacity + i;
  }
  window.features = stream.features.gather_rows(picks);
  window.labels.assign(stream.labels.begin() + static_cast<std::ptrdiff_t>(
                           rows - config.buffer_capacity),
                       stream.labels.end());
  window.num_classes = stream.num_classes;
  const auto oracle = oracle_fit(window, config, config.buffer_capacity);
  const auto scaler = first_chunk_scaler(window, config.chunk_rows);
  const auto snapshot = snapshot_slot.current();
  ASSERT_NE(snapshot, nullptr);
  expect_same_scores(*snapshot, oracle, scaler,
                     make_stream(8, /*seed=*/99).features);
}

TEST(OnlineLearnerSlot, PublishCadenceDecouplesFromChunkSize) {
  ModelRegistry registry;
  SnapshotSlot& snapshot_slot = registry.register_model("m");
  OnlineLearnerConfig config = small_config();
  config.publish_rows = config.chunk_rows * 2;  // publish every 2nd chunk
  const auto stream = make_stream(config.chunk_rows * 4);

  OnlineLearnerSlot slot("m", snapshot_slot, kFeatures, kClasses, config);
  ingest_rows(slot, stream, 0, config.chunk_rows * 4);
  for (int chunk = 0; chunk < 4; ++chunk) {
    ASSERT_EQ(slot.train_once(/*full_only=*/true), config.chunk_rows);
  }
  EXPECT_EQ(slot.stats().publishes, 2u);
  EXPECT_EQ(snapshot_slot.latest_version(), 2u);
}

TEST(OnlineLearnerSlot, TimeCadencePublishesMidCount) {
  ModelRegistry registry;
  SnapshotSlot& snapshot_slot = registry.register_model("m");
  OnlineLearnerConfig config = small_config();
  config.publish_rows = 1000000;  // row cadence effectively off
  config.publish_interval = std::chrono::milliseconds(1);
  const auto stream = make_stream(config.chunk_rows);

  OnlineLearnerSlot slot("m", snapshot_slot, kFeatures, kClasses, config);
  ingest_rows(slot, stream, 0, config.chunk_rows);
  ASSERT_EQ(slot.train_once(/*full_only=*/true), config.chunk_rows);
  EXPECT_EQ(snapshot_slot.latest_version(), 0u);  // row cadence not reached

  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  slot.maybe_publish_on_time(OnlineLearnerSlot::Clock::now());
  EXPECT_EQ(snapshot_slot.latest_version(), 1u);
  // Quiet learner: the next interval tick is revision-gated to a no-op.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  slot.maybe_publish_on_time(OnlineLearnerSlot::Clock::now());
  EXPECT_EQ(snapshot_slot.latest_version(), 1u);
}

TEST(OnlineLearnerSlot, StalledPartialChunkTrainsWhenOptedIn) {
  ModelRegistry registry;
  OnlineLearnerConfig config = small_config();
  config.stall_after = std::chrono::milliseconds(1);
  OnlineLearnerSlot slot("m", registry.register_model("m"), kFeatures,
                         kClasses, config);
  const auto stream = make_stream(3);
  ingest_rows(slot, stream, 0, 3);  // well short of a full chunk

  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(slot.has_work(OnlineLearnerSlot::Clock::now()));
  EXPECT_EQ(slot.train_once(/*full_only=*/true), 3u);
}

TEST(OnlineLearnerSlot, DriftTriggersRegenerationAndImmediatePublish) {
  ModelRegistry registry;
  SnapshotSlot& snapshot_slot = registry.register_model("m");
  OnlineLearnerConfig config = small_config();
  config.publish_rows = 1000000;       // only drift can publish here
  config.drift.threshold = 0.0;        // fire on every eligible probe
  config.drift.min_rows = 1;
  config.learner.regen_every_chunks = 0;  // cadence off: drift owns regen
  const auto stream = make_stream(config.chunk_rows * 2);

  OnlineLearnerSlot slot("m", snapshot_slot, kFeatures, kClasses, config);
  ingest_rows(slot, stream, 0, config.chunk_rows * 2);
  ASSERT_EQ(slot.train_once(/*full_only=*/true), config.chunk_rows);
  ASSERT_EQ(slot.train_once(/*full_only=*/true), config.chunk_rows);

  const auto stats = slot.stats();
  EXPECT_GE(stats.drift_regens, 1u);
  EXPECT_GE(stats.publishes, 1u);  // the regenerated encoding reached readers
  EXPECT_GE(snapshot_slot.latest_version(), 1u);
}

TEST(OnlineLearnerSlot, PublishObserverSeesEveryVersionInOrder) {
  ModelRegistry registry;
  SnapshotSlot& snapshot_slot = registry.register_model("m");
  const OnlineLearnerConfig config = small_config();
  const auto stream = make_stream(config.chunk_rows * 3);

  OnlineLearnerSlot slot("m", snapshot_slot, kFeatures, kClasses, config);
  std::vector<std::uint64_t> versions;
  slot.set_publish_observer(
      [&](std::uint64_t version,
          std::shared_ptr<const ModelSnapshot> snapshot) {
        ASSERT_NE(snapshot, nullptr);
        EXPECT_EQ(snapshot->version, version);
        versions.push_back(version);
      });
  ingest_rows(slot, stream, 0, config.chunk_rows * 3);
  while (slot.train_once(/*full_only=*/true) > 0) {
  }
  ASSERT_EQ(versions.size(), 3u);  // publish_rows=1: one per chunk
  for (std::size_t i = 0; i < versions.size(); ++i) {
    EXPECT_EQ(versions[i], i + 1);
  }
}

}  // namespace
}  // namespace disthd::serve::learn
