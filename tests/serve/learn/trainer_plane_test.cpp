// TrainerPlane (serve/learn/trainer_plane.hpp): the per-process training
// plane — learner slots keyed by model, one dedicated trainer thread, and
// the stats-annotation bridge into the serving verb.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "data/synthetic.hpp"
#include "serve/learn/trainer_plane.hpp"
#include "serve/model_registry.hpp"

namespace disthd::serve::learn {
namespace {

constexpr std::size_t kFeatures = 8;
constexpr std::size_t kClasses = 3;

data::Dataset make_stream(std::size_t rows) {
  data::SyntheticSpec spec;
  spec.num_features = kFeatures;
  spec.num_classes = kClasses;
  spec.train_size = rows;
  spec.test_size = 4;
  spec.latent_dim = 4;
  spec.seed = 31;
  return data::make_synthetic(spec).train;
}

OnlineLearnerConfig small_config() {
  OnlineLearnerConfig config;
  config.learner.dim = 48;
  config.learner.seed = 5;
  config.learner.epochs_per_chunk = 1;
  config.learner.reservoir_capacity = 128;
  config.buffer_capacity = 64;
  config.chunk_rows = 8;
  return config;
}

TEST(TrainerPlane, AttachRegistersFindsAndRejectsDuplicates) {
  ModelRegistry registry;
  TrainerPlane plane(registry);
  EXPECT_TRUE(plane.empty());
  EXPECT_EQ(plane.find("online"), nullptr);

  OnlineLearnerSlot& slot =
      plane.attach_learner("online", kFeatures, kClasses, small_config());
  EXPECT_FALSE(plane.empty());
  EXPECT_EQ(plane.find("online"), &slot);
  // The learner's model is a first-class registry citizen: predicts route
  // to it (and answer "#error no snapshot" until the first publish).
  EXPECT_NE(registry.find("online"), nullptr);

  EXPECT_THROW(
      plane.attach_learner("online", kFeatures, kClasses, small_config()),
      std::invalid_argument);
}

TEST(TrainerPlane, IngestWithoutLearnerThrows) {
  ModelRegistry registry;
  TrainerPlane plane(registry);
  const std::vector<float> row(kFeatures, 0.5f);
  EXPECT_THROW(plane.ingest("ghost", row, 0), std::invalid_argument);
  plane.attach_learner("online", kFeatures, kClasses, small_config());
  EXPECT_THROW(plane.ingest("ghost", row, 0), std::invalid_argument);
  EXPECT_EQ(plane.ingest("online", row, 0), 1u);
}

TEST(TrainerPlane, TrainerThreadFitsAndPublishesWithoutCallerHelp) {
  ModelRegistry registry;
  TrainerPlane plane(registry);
  const OnlineLearnerConfig config = small_config();
  plane.attach_learner("online", kFeatures, kClasses, config);
  plane.start();

  const std::size_t rows = config.chunk_rows * 3;
  const auto stream = make_stream(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    plane.ingest("online", stream.features.row(i), stream.labels[i]);
  }

  // The full chunks train on the plane's thread; poll for the counters
  // (bounded wait, not a sleep-and-hope).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (plane.find("online")->stats().trained_rows < rows &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(plane.find("online")->stats().trained_rows, rows);
  EXPECT_GE(registry.find("online")->latest_version(), 1u);
  plane.stop();
}

TEST(TrainerPlane, StopDrainsTailsEvenWhenNeverStarted) {
  ModelRegistry registry;
  TrainerPlane plane(registry);
  const OnlineLearnerConfig config = small_config();
  plane.attach_learner("online", kFeatures, kClasses, config);

  const std::size_t rows = config.chunk_rows + 3;  // one chunk + a tail
  const auto stream = make_stream(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    plane.ingest("online", stream.features.row(i), stream.labels[i]);
  }
  plane.stop();  // never started: stop() still flushes and publishes
  EXPECT_EQ(plane.find("online")->stats().trained_rows, rows);
  EXPECT_EQ(plane.find("online")->stats().buffer_rows, 0u);
  EXPECT_GE(registry.find("online")->latest_version(), 1u);
}

TEST(TrainerPlane, DrainFlushesOneModelSynchronously) {
  ModelRegistry registry;
  TrainerPlane plane(registry);
  const OnlineLearnerConfig config = small_config();
  plane.attach_learner("online", kFeatures, kClasses, config);
  EXPECT_THROW(plane.drain("ghost"), std::invalid_argument);

  const auto stream = make_stream(5);
  for (std::size_t i = 0; i < 5; ++i) {
    plane.ingest("online", stream.features.row(i), stream.labels[i]);
  }
  plane.drain("online");
  EXPECT_EQ(plane.find("online")->stats().trained_rows, 5u);
  EXPECT_EQ(registry.find("online")->latest_version(), 1u);
}

TEST(TrainerPlane, AnnotateStampsMatchingRowsAndAppendsMissingOnes) {
  ModelRegistry registry;
  TrainerPlane plane(registry);
  const OnlineLearnerConfig config = small_config();
  plane.attach_learner("online", kFeatures, kClasses, config);

  const auto stream = make_stream(config.chunk_rows);
  for (std::size_t i = 0; i < config.chunk_rows; ++i) {
    plane.ingest("online", stream.features.row(i), stream.labels[i]);
  }
  plane.drain("online");

  // Case 1: the engine already has a cell for the model — stamp in place.
  std::vector<ModelStats> stats(2);
  stats[0].model = "static";
  stats[1].model = "online";
  stats[1].requests = 7;
  plane.annotate(stats);
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_FALSE(stats[0].has_learner);  // non-learner rows untouched
  EXPECT_TRUE(stats[1].has_learner);
  EXPECT_EQ(stats[1].requests, 7u);  // engine counters survive
  EXPECT_EQ(stats[1].trained_rows, config.chunk_rows);
  EXPECT_EQ(stats[1].train_publishes, 1u);
  EXPECT_EQ(stats[1].buffer_rows, 0u);

  // Case 2: no predict traffic yet — the learner still reports a row, with
  // its deployment state pulled from the registry snapshot.
  std::vector<ModelStats> empty_stats;
  plane.annotate(empty_stats);
  ASSERT_EQ(empty_stats.size(), 1u);
  EXPECT_EQ(empty_stats[0].model, "online");
  EXPECT_TRUE(empty_stats[0].has_learner);
  EXPECT_EQ(empty_stats[0].trained_rows, config.chunk_rows);
  EXPECT_FALSE(empty_stats[0].backend.empty());
  EXPECT_GT(empty_stats[0].snapshot_bytes, 0u);
}

}  // namespace
}  // namespace disthd::serve::learn
