// v2 line-protocol parsing and formatting (serve/line_protocol.hpp).
//
// The malformed-input tables are the serving front-end's crash-proofing
// contract: every line here must either parse, be skipped (blank/comment),
// or throw a catchable std::runtime_error the server turns into one
// "#error" answer line — never anything that kills the process or shifts
// answer positions. peek_request_route additionally must NEVER throw, even
// on lines parse_request_line rejects (the router forwards those so the
// backend stays the single validator).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "serve/line_protocol.hpp"

namespace disthd::serve {
namespace {

// ---- parse_feature_line ---------------------------------------------------

TEST(ParseFeatureLine, ParsesPlainCsvRow) {
  std::vector<float> features;
  ASSERT_TRUE(parse_feature_line("1.5,-2,0.25", features));
  ASSERT_EQ(features.size(), 3u);
  EXPECT_FLOAT_EQ(features[0], 1.5f);
  EXPECT_FLOAT_EQ(features[1], -2.0f);
  EXPECT_FLOAT_EQ(features[2], 0.25f);
}

TEST(ParseFeatureLine, SkipsBlankAndCommentLines) {
  std::vector<float> features;
  EXPECT_FALSE(parse_feature_line("", features));
  EXPECT_FALSE(parse_feature_line("   \t", features));
  EXPECT_FALSE(parse_feature_line("# comment", features));
  EXPECT_FALSE(parse_feature_line("  # indented comment", features));
}

TEST(ParseFeatureLine, FullyNonNumericCellsBecomeZero) {
  // Matches disthd_predict's NaN policy: a header-ish or empty cell is a 0,
  // not an error (the CSV corpus fixtures rely on this).
  std::vector<float> features;
  ASSERT_TRUE(parse_feature_line("abc,,1.5", features));
  ASSERT_EQ(features.size(), 3u);
  EXPECT_FLOAT_EQ(features[0], 0.0f);
  EXPECT_FLOAT_EQ(features[1], 0.0f);
  EXPECT_FLOAT_EQ(features[2], 1.5f);
}

TEST(ParseFeatureLine, TrailingWhitespaceAfterNumberIsFine) {
  std::vector<float> features;
  ASSERT_TRUE(parse_feature_line("1.5 ,2.0\t,3 \r", features));
  ASSERT_EQ(features.size(), 3u);
  EXPECT_FLOAT_EQ(features[0], 1.5f);
}

TEST(ParseFeatureLine, RejectsTrailingGarbageAfterParsedNumber) {
  // "1.5abc" parsed a prefix — truncating to 1.5 would silently score the
  // wrong row, so it must reject, NOT zero-fill and NOT truncate.
  const char* bad_rows[] = {
      "1.5abc,2,3",
      "1,2e,3",          // exponent marker with no exponent... strtod stops
      "1,2,3.4.5",
      "0x1g,2,3",
      "1,2,3junk",
  };
  std::vector<float> features;
  for (const char* row : bad_rows) {
    EXPECT_THROW(parse_feature_line(row, features), std::runtime_error)
        << "row: " << row;
  }
}

TEST(ParseFeatureLine, EnforcesExpectedFeatureCount) {
  std::vector<float> features;
  EXPECT_TRUE(parse_feature_line("1,2,3", features, 3));
  EXPECT_THROW(parse_feature_line("1,2,3", features, 4), std::runtime_error);
  EXPECT_THROW(parse_feature_line("1,2,3,4", features, 3), std::runtime_error);
}

// ---- parse_request_line: well-formed -------------------------------------

TEST(ParseRequestLine, PlainV1RowUsesDirectiveDefaults) {
  ParsedRequest request;
  ASSERT_TRUE(parse_request_line("1,2,3", request));
  EXPECT_EQ(request.kind, RequestKind::predict);
  EXPECT_TRUE(request.model.empty());
  EXPECT_EQ(request.top_k, 1u);
  EXPECT_FALSE(request.want_scores);
  EXPECT_EQ(request.features.size(), 3u);
}

TEST(ParseRequestLine, DirectivePrefixSplitsOnSpaceAndTabRuns) {
  // A tab-joined prefix must parse as TWO directives, not route to a model
  // literally named "alpha\ttopk=2".
  ParsedRequest request;
  ASSERT_TRUE(parse_request_line("model=alpha\ttopk=2|1,2", request));
  EXPECT_EQ(request.model, "alpha");
  EXPECT_EQ(request.top_k, 2u);

  ASSERT_TRUE(parse_request_line("model=beta \t  scores=1\t|0.5", request));
  EXPECT_EQ(request.model, "beta");
  EXPECT_TRUE(request.want_scores);
}

TEST(ParseRequestLine, StatsVerbWithAndWithoutModel) {
  ParsedRequest request;
  ASSERT_TRUE(parse_request_line("stats", request));
  EXPECT_EQ(request.kind, RequestKind::stats);
  EXPECT_TRUE(request.model.empty());

  ASSERT_TRUE(parse_request_line("stats\tmodel=alpha", request));
  EXPECT_EQ(request.kind, RequestKind::stats);
  EXPECT_EQ(request.model, "alpha");
}

TEST(ParseRequestLine, ConfigVerbParsesKnobsAndSentinels) {
  ParsedRequest request;
  ASSERT_TRUE(
      parse_request_line("config model=alpha max_batch=8 deadline_us=500",
                         request));
  EXPECT_EQ(request.kind, RequestKind::config);
  EXPECT_EQ(request.model, "alpha");
  EXPECT_EQ(request.serve_config.max_batch, 8u);
  EXPECT_EQ(request.serve_config.flush_deadline.count(), 500);

  // Omitted knobs stay at their sentinels: revert-to-engine-default.
  ASSERT_TRUE(parse_request_line("config model=alpha", request));
  EXPECT_EQ(request.serve_config.max_batch, 0u);
  EXPECT_LT(request.serve_config.flush_deadline.count(), 0);

  ASSERT_TRUE(parse_request_line("config\tmodel=alpha\tdeadline_us=0",
                                 request));
  EXPECT_EQ(request.serve_config.flush_deadline.count(), 0);
}

TEST(ParseRequestLine, TrainVerbParsesFeaturesAndLabel) {
  ParsedRequest request;
  ASSERT_TRUE(parse_request_line("train model=alpha|1.5,-2,0.25,3", request));
  EXPECT_EQ(request.kind, RequestKind::train);
  EXPECT_EQ(request.model, "alpha");
  ASSERT_EQ(request.features.size(), 3u);  // last cell peeled off as label
  EXPECT_FLOAT_EQ(request.features[0], 1.5f);
  EXPECT_FLOAT_EQ(request.features[1], -2.0f);
  EXPECT_FLOAT_EQ(request.features[2], 0.25f);
  EXPECT_EQ(request.label, 3);

  // model= is optional (the server resolves the default model), tabs split
  // the directive prefix like every other verb.
  ASSERT_TRUE(parse_request_line("train\t|0.5,1", request));
  EXPECT_TRUE(request.model.empty());
  ASSERT_EQ(request.features.size(), 1u);
  EXPECT_EQ(request.label, 1);
}

TEST(ParseRequestLine, TrainVerbEnforcesExpectedFeatures) {
  // expected_features counts FEATURES, not cells: a 3-feature model takes a
  // 4-cell train row (features + label).
  ParsedRequest request;
  ASSERT_TRUE(parse_request_line("train|1,2,3,0", request, 3));
  EXPECT_EQ(request.features.size(), 3u);
  EXPECT_THROW(parse_request_line("train|1,2,0", request, 3),
               std::runtime_error);
}

// ---- parse_request_line: the malformed-input table -----------------------

TEST(ParseRequestLine, MalformedLinesThrowInsteadOfKillingTheServer) {
  // Each entry: a line a client could actually pipe in, and a fragment the
  // thrown reason must contain (the fragment lands in the "#error" answer,
  // so it has to name the offending token, not just say "bad input").
  struct Case {
    const char* line;
    const char* reason_fragment;
  };
  const Case cases[] = {
      {"model=|1,2", "names no model"},
      {"garbage|1,2", "expected key=value"},
      {"model=a rate=9|1,2", "unknown request directive"},
      {"topk=0|1,2", "not a positive integer"},
      {"topk=-3|1,2", "not a positive integer"},
      {"topk=two|1,2", "not a positive integer"},
      {"topk=2x|1,2", "not a positive integer"},
      {"scores=2|1,2", "must be 0 or 1"},
      {"scores=yes|1,2", "must be 0 or 1"},
      {"model=a|", "directives but no features"},
      {"model=a|   ", "directives but no features"},
      {"model=a|# nope", "directives but no features"},
      {"1.5abc,2", "trailing garbage"},
      {"model=a|1,2.3.4", "trailing garbage"},
      {"stats topk=2", "accepts only 'model=NAME'"},
      {"stats model=", "names no model"},
      {"stats bare", "expected key=value"},
      {"config", "names no model"},
      {"config max_batch=8", "names no model"},
      {"config model=", "names no model"},
      {"config model=a max_batch=0", "is not an integer >= 1"},
      {"config model=a max_batch=big", "is not an integer >= 1"},
      {"config model=a deadline_us=-1", "is not an integer >= 0"},
      {"config model=a knob=1", "unknown config directive"},
      {"config model=a max_batch", "expected key=value"},
      {"train", "needs '|'"},
      {"train model=a", "needs '|'"},
      {"train model=a|", "no features,label row"},
      {"train model=a|# nope", "no features,label row"},
      {"train|7", "at least one feature and a label"},
      {"train topk=2|1,2,0", "accepts only 'model=NAME'"},
      {"train model=|1,2,0", "names no model"},
      // A garbage label must REJECT, not 0-fill into class 0 and silently
      // mistrain (the predict-row NaN policy stops at the label cell).
      {"train model=a|1,2,cat", "not a non-negative integer"},
      {"train model=a|1,2,-1", "not a non-negative integer"},
      {"train model=a|1,2,1.5", "not a non-negative integer"},
      {"train model=a|1,2,3x", "not a non-negative integer"},
      {"train model=a|1,2,", "not a non-negative integer"},
      {"train model=a|1,2.3.4,0", "trailing garbage"},
  };
  for (const Case& test_case : cases) {
    ParsedRequest request;
    try {
      parse_request_line(test_case.line, request);
      FAIL() << "expected throw for: " << test_case.line;
    } catch (const std::runtime_error& error) {
      EXPECT_NE(std::string(error.what()).find(test_case.reason_fragment),
                std::string::npos)
          << "line '" << test_case.line << "' threw '" << error.what()
          << "' which does not mention '" << test_case.reason_fragment << "'";
    }
  }
}

// ---- peek_request_route ---------------------------------------------------

TEST(PeekRequestRoute, RoutesWithoutValidating) {
  struct Case {
    const char* line;
    RouteKind kind;
    const char* model;
  };
  const Case cases[] = {
      {"", RouteKind::skip, ""},
      {"   \t", RouteKind::skip, ""},
      {"# comment", RouteKind::skip, ""},
      {"1,2,3", RouteKind::predict, ""},  // v1 row: default model
      {"model=alpha|1,2", RouteKind::predict, "alpha"},
      {"model=alpha\ttopk=2|1,2", RouteKind::predict, "alpha"},
      {"topk=2 model=beta|1,2", RouteKind::predict, "beta"},
      {"stats", RouteKind::stats, ""},
      {"stats model=alpha", RouteKind::stats, "alpha"},
      {"config model=beta max_batch=4", RouteKind::config, "beta"},
      {"train model=alpha|1,2,0", RouteKind::train, "alpha"},
      {"train|1,2,0", RouteKind::train, ""},  // default model
      // Malformed train lines still route by whatever model= they carry
      // (no '|', garbage label) — the backend owns the "#error" answer.
      {"train model=alpha", RouteKind::train, "alpha"},
      {"train model=alpha|1,2,cat", RouteKind::train, "alpha"},
      // ...and "model=" INSIDE the row is row data, not a directive.
      {"train|model=fake,1,0", RouteKind::train, ""},
      // Malformed lines still route (the backend owns the rejection)...
      {"topk=zero model=alpha|1,2", RouteKind::predict, "alpha"},
      {"garbage directives|1,2", RouteKind::predict, ""},
      {"model=a|1,2.3.4", RouteKind::predict, "a"},
      {"config knob=1", RouteKind::config, ""},
      // ...and a "model=" glued into a feature row does NOT reroute a v1
      // line ("|"-less lines never have a directive prefix).
      {"model=fake,1,2", RouteKind::predict, ""},
  };
  for (const Case& test_case : cases) {
    std::string model;
    EXPECT_EQ(peek_request_route(test_case.line, model), test_case.kind)
        << "line: " << test_case.line;
    EXPECT_EQ(model, test_case.model) << "line: " << test_case.line;
  }
}

// ---- formatters -----------------------------------------------------------

TEST(FormatError, PrefixesAndNeutralizesControlCharacters) {
  EXPECT_EQ(format_error("bad request"), "#error bad request");
  // Embedded newlines would split one answer into two lines — the framing
  // invariant the whole answer-position design rests on.
  EXPECT_EQ(format_error("line1\nline2\r"), "#error line1 line2 ");
  EXPECT_EQ(format_error("tab\tok"), "#error tab\tok");
}

TEST(FormatConfigAck, PrintsSentinelsAsDefault) {
  ModelServeConfig config;  // both knobs at their inherit sentinels
  EXPECT_EQ(format_config_ack("alpha", config, ScoringBackend::prenorm),
            "#config model=alpha max_batch=default deadline_us=default "
            "backend=prenorm");
  config.max_batch = 16;
  config.flush_deadline = std::chrono::microseconds(250);
  EXPECT_EQ(format_config_ack("alpha", config, ScoringBackend::packed),
            "#config model=alpha max_batch=16 deadline_us=250 "
            "backend=packed");
}

TEST(FormatTrainAck, NamesModelAndCumulativeCount) {
  EXPECT_EQ(format_train_ack("alpha", 1), "#train model=alpha ingested=1");
  EXPECT_EQ(format_train_ack("o", 12345), "#train model=o ingested=12345");
}

TEST(FormatModelStats, TrainFieldsAppendAfterEverythingElse) {
  // Fixed-position safety: the train-plane fields must extend the line at
  // the END (after backend=/snapshot_bytes=) and be omitted entirely for a
  // model with no learner — existing consumers parse by position.
  ModelStats stats;
  stats.model = "alpha";
  stats.backend = "prenorm";
  const std::string without = format_model_stats(stats);
  EXPECT_EQ(without.find("trained_rows="), std::string::npos);

  stats.has_learner = true;
  stats.trained_rows = 120;
  stats.train_publishes = 3;
  stats.drift_regens = 1;
  stats.buffer_rows = 17;
  const std::string with = format_model_stats(stats);
  ASSERT_EQ(with.rfind(without, 0), 0u)  // strict prefix: nothing shifted
      << "learner fields must only append, got: " << with;
  EXPECT_EQ(with.substr(without.size()),
            " trained_rows=120 publishes=3 drift_regens=1 buffer_rows=17");
}

TEST(FormatStatsLines, FiltersAndReportsIdleModels) {
  std::vector<ModelStats> stats(2);
  stats[0].model = "alpha";
  stats[0].requests = 3;
  stats[1].model = "beta";

  const auto all = format_stats_lines(stats, "");
  ASSERT_EQ(all.size(), 2u);
  EXPECT_NE(all[0].find("model=alpha"), std::string::npos);
  EXPECT_NE(all[1].find("model=beta"), std::string::npos);

  const auto only_beta = format_stats_lines(stats, "beta");
  ASSERT_EQ(only_beta.size(), 1u);
  EXPECT_NE(only_beta[0].find("model=beta"), std::string::npos);

  // A model the engine has not served yet still answers — with a zero row,
  // not with silence (silence would desync the answer stream).
  const auto idle = format_stats_lines(stats, "ghost");
  ASSERT_EQ(idle.size(), 1u);
  EXPECT_NE(idle[0].find("model=ghost"), std::string::npos);
  EXPECT_NE(idle[0].find("requests=0"), std::string::npos);
}

}  // namespace
}  // namespace disthd::serve
