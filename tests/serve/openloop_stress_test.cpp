// Open-loop overload stress for the scoring backends (ISSUE 10 satellite).
//
// The open-loop harness offers requests on a precomputed arrival schedule
// that does not react to the server. Here the schedule's rate is set far
// past what a deliberately tiny engine can absorb, so the dispatcher is
// permanently behind and every submit() rides the backpressure path (the
// bounded queue fills and submit blocks until a worker drains it). The
// property under test: backpressure and overload change LATENCY ONLY —
// every answer a saturated engine returns is bit-identical to scoring the
// same query offline through the same snapshot, for both the prenorm and
// packed backends interleaved in one traffic mix, and the whole response
// stream is reproducible run-to-run even though batch shapes differ with
// timing. Runs under the ThreadSanitizer CI leg, where any unsynchronized
// queue/snapshot access trips the detector directly.
#include <gtest/gtest.h>

#include <future>
#include <utility>
#include <vector>

#include "hd/encoder.hpp"
#include "hd/model.hpp"
#include "serve/inference_engine.hpp"
#include "serve/model_registry.hpp"
#include "serve/model_snapshot.hpp"
#include "util/arrivals.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace disthd::serve {
namespace {

constexpr std::size_t kFeatures = 12;
constexpr std::size_t kDim = 128;
constexpr std::size_t kClasses = 5;
constexpr std::size_t kQueryPool = 64;
constexpr std::size_t kArrivals = 1500;

core::HdcClassifier make_classifier(std::uint64_t seed) {
  auto encoder = std::make_unique<hd::RbfEncoder>(kFeatures, kDim, seed);
  hd::ClassModel model(kClasses, kDim);
  util::Rng rng(seed ^ 0xABC);
  model.mutable_class_vectors().fill_normal(rng, 0.0, 1.0);
  model.refresh_norms();
  return core::HdcClassifier(std::move(encoder), std::move(model));
}

util::Matrix query_pool(std::uint64_t seed) {
  util::Matrix m(kQueryPool, kFeatures);
  util::Rng rng(seed);
  m.fill_normal(rng);
  return m;
}

struct Reference {
  std::vector<int> labels;
  std::vector<float> scores;  // score of the argmax label per row
};

/// Offline truth for one backend: score the whole pool through the
/// snapshot's own pipeline, single-threaded, no queue in sight.
Reference offline_reference(const SnapshotSlot& slot,
                            const util::Matrix& queries) {
  Reference reference;
  util::Matrix features = queries;
  util::Matrix encoded, scores;
  slot.current()->score_raw(features, encoded, scores);
  for (std::size_t r = 0; r < scores.rows(); ++r) {
    std::size_t best = 0;
    for (std::size_t c = 1; c < scores.cols(); ++c) {
      if (scores(r, c) > scores(r, best)) best = c;
    }
    reference.labels.push_back(static_cast<int>(best));
    reference.scores.push_back(scores(r, best));
  }
  return reference;
}

/// One saturated open-loop run over the prenorm/packed mix; returns the
/// (label, score) stream in arrival order.
std::vector<std::pair<int, float>> run_overloaded(
    const util::Matrix& queries, std::uint64_t model_seed,
    std::uint64_t arrival_seed) {
  ModelRegistry registry;
  registry.register_model("prenorm").publish(make_classifier(model_seed));
  auto& packed_slot = registry.register_model("packed");
  packed_slot.set_backend(ScoringBackend::packed);
  packed_slot.publish(make_classifier(model_seed));

  // Tiny on purpose: 2 workers, micro-batches of 8, a 64-deep queue. The
  // arrival rate below outruns this by orders of magnitude, so the queue
  // stays full and submit() blocks — the exact backpressure path.
  InferenceEngineConfig engine_config;
  engine_config.max_batch = 8;
  engine_config.workers = 2;
  engine_config.queue_capacity = 64;
  engine_config.flush_deadline = std::chrono::microseconds(50);
  InferenceEngine engine(registry, engine_config);

  util::ArrivalConfig arrival_config;
  arrival_config.kind = util::ArrivalKind::poisson;
  arrival_config.rate = 2e6;  // far past any machine's capacity here
  arrival_config.seed = arrival_seed;
  const auto schedule = util::arrival_schedule(arrival_config, kArrivals);

  util::WallTimer wall;
  std::vector<std::future<PredictResult>> futures;
  futures.reserve(kArrivals);
  for (std::size_t i = 0; i < kArrivals; ++i) {
    while (wall.seconds() < schedule[i]) {
    }  // permanently behind within microseconds; spin is theoretical
    PredictRequest request;
    request.model = (i % 2 == 0) ? "prenorm" : "packed";
    const auto row = queries.row(i % kQueryPool);
    request.features.assign(row.begin(), row.end());
    futures.push_back(engine.submit(std::move(request)));
  }
  // Overload sanity: the offered schedule ends within ~a millisecond; a
  // real engine cannot have kept up, so the dispatcher finished late.
  EXPECT_GT(wall.seconds(), schedule.back());

  std::vector<std::pair<int, float>> responses;
  responses.reserve(kArrivals);
  for (auto& future : futures) {
    auto result = future.get();
    EXPECT_EQ(result.version, 1u);
    responses.emplace_back(result.label(), result.score());
  }
  engine.shutdown();
  EXPECT_EQ(engine.stats().requests, kArrivals);
  return responses;
}

TEST(OpenLoopStress, OverloadChangesLatencyNotAnswers) {
  const auto queries = query_pool(31);
  constexpr std::uint64_t kModelSeed = 17;

  // Offline truth per backend, computed before any engine exists.
  ModelRegistry reference_registry;
  auto& prenorm_slot = reference_registry.register_model("prenorm");
  prenorm_slot.publish(make_classifier(kModelSeed));
  auto& packed_slot = reference_registry.register_model("packed");
  packed_slot.set_backend(ScoringBackend::packed);
  packed_slot.publish(make_classifier(kModelSeed));
  const Reference prenorm_ref = offline_reference(prenorm_slot, queries);
  const Reference packed_ref = offline_reference(packed_slot, queries);

  // The two backends really are different computations (sign-quantized
  // Hamming vs float cosine) — if their scores agreed everywhere the mix
  // below would not be exercising two paths.
  EXPECT_NE(prenorm_ref.scores, packed_ref.scores);

  const auto responses = run_overloaded(queries, kModelSeed, 101);
  ASSERT_EQ(responses.size(), kArrivals);
  for (std::size_t i = 0; i < responses.size(); ++i) {
    const auto& reference = (i % 2 == 0) ? prenorm_ref : packed_ref;
    const std::size_t row = i % kQueryPool;
    ASSERT_EQ(responses[i].first, reference.labels[row]) << "arrival " << i;
    // Bit-identical, not approximately: overload reshapes micro-batches,
    // and every kernel in both backends scores rows independently of their
    // batch-mates.
    ASSERT_EQ(responses[i].second, reference.scores[row]) << "arrival " << i;
  }
}

TEST(OpenLoopStress, SaturatedRunsAreReproducible) {
  const auto queries = query_pool(31);
  // Same seeds, two runs: timing (hence batch shapes, queue depths, worker
  // interleavings) WILL differ; the response stream must not.
  const auto first = run_overloaded(queries, 17, 101);
  const auto second = run_overloaded(queries, 17, 101);
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace disthd::serve
