// Serving <-> offline parity (ISSUE 3 satellite, extended for the v2 API).
//
// Predictions served through the InferenceEngine must be BIT-IDENTICAL to
// HdcClassifier::predict_batch / scores_batch, for every micro-batch size
// and worker count: the engine batches whatever requests happen to be
// pending, so the same query is scored inside differently-shaped batches
// depending on timing — parity holds because every kernel in the path
// (encode_batch, pre-normalized scores_batch) computes each row
// independently of its batch-mates, and the snapshot's pre-normalized class
// vectors hoist the exact computation scores_batch performs per call. A
// trained DistHD classifier on the committed fixture CSVs is the reference
// model, so regeneration-produced state (offsets, zeroed model columns) is
// part of what is compared. The scaler suite proves the self-contained
// snapshot applies the training-time scaler exactly like
// tools::ModelBundle::apply_scaler does offline.
#include <gtest/gtest.h>

#include <future>
#include <vector>

#include "core/disthd_trainer.hpp"
#include "data/loaders.hpp"
#include "serve/inference_engine.hpp"
#include "serve/model_registry.hpp"
#include "serve/model_snapshot.hpp"

namespace disthd::serve {
namespace {

data::Dataset fixture_dataset(const char* name) {
  return data::load_csv_labeled(std::string(DISTHD_FIXTURE_DIR) + "/" + name,
                                /*has_header=*/true);
}

/// Reference classifier trained once on the fixture train CSV.
const core::HdcClassifier& reference_classifier() {
  static const core::HdcClassifier classifier = [] {
    const auto train = fixture_dataset("synth_train.csv");
    core::DistHDConfig config;
    config.dim = 96;
    config.iterations = 12;
    config.regen_every = 3;
    config.polish_epochs = 2;
    config.seed = 5;
    core::DistHDTrainer trainer(config);
    return trainer.fit(train, nullptr);
  }();
  return classifier;
}

core::HdcClassifier clone_reference() {
  const auto& reference = reference_classifier();
  const auto* rbf =
      dynamic_cast<const hd::RbfEncoder*>(&reference.encoder());
  return core::HdcClassifier(std::make_unique<hd::RbfEncoder>(*rbf),
                             hd::ClassModel(reference.model()));
}

class ServingParity
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(ServingParity, EngineMatchesOfflinePredictBatchBitExactly) {
  const auto [batch_size, workers] = GetParam();
  const auto& reference = reference_classifier();
  const auto test = fixture_dataset("synth_test.csv");

  const auto expected_labels = reference.predict_batch(test.features);
  util::Matrix expected_scores;
  reference.scores_batch(test.features, expected_scores);

  ModelRegistry registry;
  registry.register_model("ref").publish(clone_reference());
  InferenceEngineConfig config;
  config.max_batch = batch_size;
  config.workers = workers;
  config.flush_deadline = std::chrono::microseconds(200);
  InferenceEngine engine(registry, config);

  // Submit everything up front so micro-batches actually form (and split at
  // ragged boundaries: 45 fixture rows across batch sizes 1/7/64).
  std::vector<std::future<PredictResult>> futures;
  futures.reserve(test.features.rows());
  for (std::size_t r = 0; r < test.features.rows(); ++r) {
    futures.push_back(engine.submit(test.features.row(r)));
  }
  for (std::size_t r = 0; r < futures.size(); ++r) {
    const auto result = futures[r].get();
    ASSERT_EQ(result.label(), expected_labels[r]) << "row " << r;
    // Bit-identical score, not approximately equal: same kernels, same
    // per-row arithmetic, regardless of how the engine batched the row or
    // that the snapshot's class vectors were pre-normalized at publish.
    ASSERT_EQ(result.score(),
              expected_scores(r, static_cast<std::size_t>(result.label())))
        << "row " << r;
    ASSERT_EQ(result.version, 1u);
  }
  const auto stats = engine.stats();
  EXPECT_EQ(stats.requests, test.features.rows());
}

INSTANTIATE_TEST_SUITE_P(
    BatchSizesAndWorkers, ServingParity,
    ::testing::Values(std::pair<std::size_t, std::size_t>{1, 1},
                      std::pair<std::size_t, std::size_t>{1, 2},
                      std::pair<std::size_t, std::size_t>{7, 1},
                      std::pair<std::size_t, std::size_t>{7, 2},
                      std::pair<std::size_t, std::size_t>{7, 8},
                      std::pair<std::size_t, std::size_t>{64, 1},
                      std::pair<std::size_t, std::size_t>{64, 8}));

TEST(ServingParity, SingleSubmitMatchesSingleRowBatch) {
  const auto test = fixture_dataset("synth_test.csv");
  ModelRegistry registry;
  registry.register_model("ref").publish(clone_reference());
  InferenceEngine engine(registry);
  const auto& reference = reference_classifier();
  util::Matrix one_row(1, test.features.cols());
  for (std::size_t r = 0; r < std::min<std::size_t>(8, test.features.rows());
       ++r) {
    std::copy(test.features.row(r).begin(), test.features.row(r).end(),
              one_row.row(0).begin());
    const auto expected = reference.predict_batch(one_row);
    EXPECT_EQ(engine.predict(test.features.row(r)).label(), expected[0]);
  }
}

TEST(ServingParity, SnapshotScalerMatchesOfflineBundleScaler) {
  // A deliberately non-trivial scaler (per-column offset and scale), the
  // shape disthd_train persists into bundles. The engine gets RAW rows and
  // must reproduce offline apply_scaler + scores_batch bit-for-bit through
  // the snapshot's own scaler.
  const auto test = fixture_dataset("synth_test.csv");
  const std::size_t features = test.features.cols();
  std::vector<float> offset(features);
  std::vector<float> scale(features);
  for (std::size_t c = 0; c < features; ++c) {
    offset[c] = -1.5f + 0.25f * static_cast<float>(c);
    scale[c] = 0.125f * static_cast<float>(c + 1);
  }

  // Offline reference path: exactly what disthd_predict does with a bundle.
  const auto& reference = reference_classifier();
  util::Matrix scaled = test.features;
  for (std::size_t r = 0; r < scaled.rows(); ++r) {
    auto row = scaled.row(r);
    for (std::size_t c = 0; c < row.size(); ++c) {
      row[c] = (row[c] - offset[c]) * scale[c];
    }
  }
  const auto expected_labels = reference.predict_batch(scaled);
  util::Matrix expected_scores;
  reference.scores_batch(scaled, expected_scores);

  ModelRegistry registry;
  registry.register_model("scaled").publish(clone_reference(), offset, scale);
  InferenceEngineConfig config;
  config.max_batch = 7;
  InferenceEngine engine(registry, config);

  std::vector<std::future<PredictResult>> futures;
  futures.reserve(test.features.rows());
  for (std::size_t r = 0; r < test.features.rows(); ++r) {
    futures.push_back(engine.submit(test.features.row(r)));  // RAW row
  }
  for (std::size_t r = 0; r < futures.size(); ++r) {
    const auto result = futures[r].get();
    ASSERT_EQ(result.label(), expected_labels[r]) << "row " << r;
    ASSERT_EQ(result.score(),
              expected_scores(r, static_cast<std::size_t>(result.label())))
        << "row " << r;
  }
}

}  // namespace
}  // namespace disthd::serve
