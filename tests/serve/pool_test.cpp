// EnginePool contract: model-affine routing over independent engines.
//
//   - Construction/validation and default-model resolution mirror the
//     single engine.
//   - route() is exactly the rendezvous hash of the resolved name over the
//     pool size.
//   - Parity: pooled serving returns BIT-IDENTICAL results to a single
//     engine (and therefore to the offline predict path the single engine
//     is already pinned against) — routing must never change an answer,
//     only where it is computed.
//   - Per-model ModelServeConfig overrides (slot-carried max_batch / flush
//     deadline) actually govern batching, per model.
//   - Per-model stats attribute batch shape to the right workload, and
//     stats snapshots stay consistent while readers race live traffic
//     (the TSan CI job runs this suite).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "hd/encoder.hpp"
#include "hd/model.hpp"
#include "serve/engine_pool.hpp"
#include "serve/inference_engine.hpp"
#include "serve/model_registry.hpp"
#include "serve/routing.hpp"
#include "util/rng.hpp"

namespace disthd::serve {
namespace {

constexpr std::size_t kFeatures = 6;
constexpr std::size_t kDim = 32;
constexpr std::size_t kClasses = 3;

core::HdcClassifier make_classifier(std::uint64_t seed) {
  auto encoder = std::make_unique<hd::RbfEncoder>(kFeatures, kDim, seed);
  hd::ClassModel model(kClasses, kDim);
  util::Rng rng(seed ^ 0xABC);
  model.mutable_class_vectors().fill_normal(rng, 0.0, 1.0);
  model.refresh_norms();
  return core::HdcClassifier(std::move(encoder), std::move(model));
}

std::vector<float> query(std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> features(kFeatures);
  for (auto& f : features) f = static_cast<float>(rng.normal());
  return features;
}

std::vector<std::string> register_models(ModelRegistry& registry,
                                         std::size_t count) {
  std::vector<std::string> names;
  for (std::size_t m = 0; m < count; ++m) {
    names.push_back("model-" + std::to_string(m));
    registry.register_model(names.back()).publish(make_classifier(m + 1));
  }
  return names;
}

TEST(EnginePool, ValidatesConfigAndRegistry) {
  ModelRegistry registry;
  register_models(registry, 1);
  EnginePoolConfig config;
  config.engines = 0;
  EXPECT_THROW(EnginePool(registry, config), std::invalid_argument);
  config = {};
  config.engine.max_batch = 0;
  EXPECT_THROW(EnginePool(registry, config), std::invalid_argument);
  config = {};
  config.engine.default_model = "ghost";
  EXPECT_THROW(EnginePool(registry, config), std::invalid_argument);
  ModelRegistry empty;
  EXPECT_THROW(EnginePool(empty, {}), std::invalid_argument);
}

TEST(EnginePool, ResolvesDefaultModelLikeTheSingleEngine) {
  ModelRegistry one;
  register_models(one, 1);
  EnginePoolConfig config;
  config.engines = 2;
  EnginePool sole(one, config);
  EXPECT_EQ(sole.default_model(), "model-0");
  EXPECT_EQ(sole.size(), 2u);
  EXPECT_EQ(sole.predict(query(1)).version, 1u);  // empty name -> default

  ModelRegistry two;
  register_models(two, 2);
  EnginePool ambiguous(two, config);
  EXPECT_EQ(ambiguous.default_model(), "");
  EXPECT_THROW(ambiguous.predict(query(1)), std::invalid_argument);
  EXPECT_THROW(ambiguous.route(""), std::invalid_argument);

  config.engine.default_model = "model-1";
  EnginePool explicit_default(two, config);
  EXPECT_EQ(explicit_default.default_model(), "model-1");
  EXPECT_EQ(explicit_default.route(""), explicit_default.route("model-1"));
}

TEST(EnginePool, RoutesByRendezvousHashOfTheResolvedName) {
  ModelRegistry registry;
  const auto names = register_models(registry, 6);
  EnginePoolConfig config;
  config.engines = 3;
  EnginePool pool(registry, config);
  for (const auto& name : names) {
    EXPECT_EQ(pool.route(name), rendezvous_route(name, 3));
    EXPECT_LT(pool.route(name), pool.size());
  }
  // Unknown model: routing is a pure hash (no registry probe) but submit
  // still validates.
  PredictRequest ghost;
  ghost.model = "ghost";
  ghost.features = query(1);
  EXPECT_THROW(pool.submit(std::move(ghost)), std::invalid_argument);
}

TEST(EnginePool, ParityBitIdenticalToSingleEngineAcrossModels) {
  ModelRegistry registry;
  const auto names = register_models(registry, 4);
  InferenceEngineConfig engine_config;
  engine_config.max_batch = 8;
  engine_config.flush_deadline = std::chrono::microseconds(100);

  InferenceEngine single(registry, engine_config);
  EnginePoolConfig pool_config;
  pool_config.engines = 4;
  pool_config.engine = engine_config;
  EnginePool pool(registry, pool_config);

  for (std::size_t q = 0; q < 48; ++q) {
    PredictRequest request;
    request.model = names[q % names.size()];
    request.features = query(100 + q);
    request.top_k = 2;
    request.want_scores = true;
    PredictRequest same = request;
    const PredictResult from_single = single.predict(std::move(request));
    const PredictResult from_pool = pool.predict(std::move(same));
    EXPECT_EQ(from_pool.version, from_single.version);
    ASSERT_EQ(from_pool.top.size(), from_single.top.size());
    for (std::size_t rank = 0; rank < from_pool.top.size(); ++rank) {
      EXPECT_EQ(from_pool.top[rank].label, from_single.top[rank].label);
      EXPECT_EQ(from_pool.top[rank].score, from_single.top[rank].score);
    }
    ASSERT_EQ(from_pool.scores.size(), from_single.scores.size());
    for (std::size_t c = 0; c < from_pool.scores.size(); ++c) {
      EXPECT_EQ(from_pool.scores[c], from_single.scores[c]);
    }
  }
}

TEST(EnginePool, PerModelMaxBatchOverrideFlushesBySize) {
  ModelRegistry registry;
  const auto names = register_models(registry, 2);
  // Engine defaults would never flush on their own within the test
  // lifetime; the override must.
  ModelServeConfig fast;
  fast.max_batch = 2;
  registry.configure_model(names[0], fast);

  EnginePoolConfig config;
  config.engines = 2;
  config.engine.max_batch = 1000;
  config.engine.flush_deadline = std::chrono::seconds(60);
  EnginePool pool(registry, config);

  std::vector<std::future<PredictResult>> futures;
  for (int i = 0; i < 4; ++i) {
    PredictRequest request;
    request.model = names[0];
    request.features = query(i);
    futures.push_back(pool.submit(std::move(request)));
  }
  for (auto& future : futures) {
    ASSERT_EQ(future.wait_for(std::chrono::seconds(20)),
              std::future_status::ready);
    EXPECT_EQ(future.get().version, 1u);
  }
  const auto stats = pool.model_stats();
  ASSERT_EQ(stats.size(), 1u);  // only the trafficked model has a cell
  EXPECT_EQ(stats[0].model, names[0]);
  EXPECT_EQ(stats[0].requests, 4u);
  EXPECT_GE(stats[0].flush_full, 2u);  // two size-triggered flushes of 2
  EXPECT_EQ(stats[0].largest_batch, 2u);
}

TEST(EnginePool, PerModelDeadlineOverrideFlushesPartialBatch) {
  ModelRegistry registry;
  const auto names = register_models(registry, 2);
  ModelServeConfig latency_critical;
  latency_critical.flush_deadline = std::chrono::microseconds(500);
  registry.configure_model(names[1], latency_critical);

  EnginePoolConfig config;
  config.engines = 2;
  config.engine.max_batch = 1000;  // never reached
  config.engine.flush_deadline = std::chrono::seconds(60);
  EnginePool pool(registry, config);

  // Without the override this predict would sit the full 60 s deadline.
  PredictRequest request;
  request.model = names[1];
  request.features = query(7);
  auto future = pool.submit(std::move(request));
  ASSERT_EQ(future.wait_for(std::chrono::seconds(20)),
            std::future_status::ready);
  EXPECT_EQ(future.get().version, 1u);
  const auto stats = pool.model_stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].flush_deadline, 1u);
}

TEST(EnginePool, PerModelStatsAttributeBatchShapePerWorkload) {
  ModelRegistry registry;
  const auto names = register_models(registry, 2);
  ModelServeConfig batchy;
  batchy.max_batch = 4;
  registry.configure_model(names[0], batchy);

  EnginePoolConfig config;
  config.engines = 2;
  config.engine.max_batch = 1000;
  config.engine.flush_deadline = std::chrono::milliseconds(2);
  EnginePool pool(registry, config);

  // Workload 0: two full batches of 4. Workload 1: three lone requests.
  std::vector<std::future<PredictResult>> futures;
  for (int i = 0; i < 8; ++i) {
    PredictRequest request;
    request.model = names[0];
    request.features = query(i);
    futures.push_back(pool.submit(std::move(request)));
  }
  for (auto& future : futures) (void)future.get();
  for (int i = 0; i < 3; ++i) {
    PredictRequest request;
    request.model = names[1];
    request.features = query(50 + i);
    (void)pool.predict(std::move(request));
  }

  const auto stats = pool.model_stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].model, names[0]);  // sorted by name
  EXPECT_EQ(stats[0].requests, 8u);
  EXPECT_GE(stats[0].flush_full, 1u);
  EXPECT_EQ(stats[0].largest_batch, 4u);
  EXPECT_EQ(stats[1].model, names[1]);
  EXPECT_EQ(stats[1].requests, 3u);
  EXPECT_EQ(stats[1].batches, 3u);  // lone requests, deadline-flushed
  EXPECT_EQ(stats[1].flush_deadline, 3u);
  EXPECT_EQ(stats[1].largest_batch, 1u);
  // Latency histograms saw every request.
  EXPECT_EQ(stats[0].latency.total, 8u);
  EXPECT_EQ(stats[1].latency.total, 3u);
  EXPECT_GT(stats[1].p99_us(), 0.0);

  // The aggregate view sums the cells.
  const EngineStats aggregate = pool.stats();
  EXPECT_EQ(aggregate.requests, 11u);
  EXPECT_EQ(aggregate.largest_batch, 4u);
}

TEST(EnginePool, ShutdownDrainsAndRejectsNewSubmits) {
  ModelRegistry registry;
  const auto names = register_models(registry, 3);
  EnginePoolConfig config;
  config.engines = 3;
  config.engine.max_batch = 64;
  config.engine.flush_deadline = std::chrono::milliseconds(50);
  EnginePool pool(registry, config);
  std::vector<std::future<PredictResult>> futures;
  for (int i = 0; i < 30; ++i) {
    PredictRequest request;
    request.model = names[i % names.size()];
    request.features = query(i);
    futures.push_back(pool.submit(std::move(request)));
  }
  pool.shutdown();  // must serve all 30, on every engine
  for (auto& future : futures) {
    EXPECT_EQ(future.get().version, 1u);
  }
  EXPECT_EQ(pool.stats().requests, 30u);
  PredictRequest late;
  late.model = names[0];
  late.features = query(0);
  EXPECT_THROW(pool.submit(std::move(late)), std::runtime_error);
  pool.shutdown();  // idempotent
}

// Stats snapshots racing live traffic: pinned under the TSan CI job. The
// invariants assert per-model snapshot consistency (an atomic-copy read
// can never observe requests and batches from different instants that
// violate requests >= batches >= flush-reason sum).
TEST(EnginePoolStats, SnapshotReadersRaceServingTraffic) {
  ModelRegistry registry;
  const auto names = register_models(registry, 3);
  EnginePoolConfig config;
  config.engines = 2;
  config.engine.max_batch = 8;
  config.engine.flush_deadline = std::chrono::microseconds(100);
  config.engine.workers = 2;
  EnginePool pool(registry, config);

  std::atomic<bool> done{false};
  std::vector<std::thread> clients;
  constexpr std::size_t kClients = 2;
  constexpr std::size_t kRequestsPerClient = 150;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (std::size_t q = 0; q < kRequestsPerClient; ++q) {
        PredictRequest request;
        request.model = names[(c + q) % names.size()];
        request.features = query(c * 1000 + q);
        (void)pool.predict(std::move(request));
      }
    });
  }
  std::vector<std::thread> pollers;
  for (int p = 0; p < 2; ++p) {
    pollers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        const EngineStats aggregate = pool.stats();
        ASSERT_GE(aggregate.requests, aggregate.batches);
        for (const auto& model : pool.model_stats()) {
          ASSERT_GE(model.requests, model.batches);
          ASSERT_EQ(model.batches, model.flush_full + model.flush_deadline +
                                       model.flush_preempted +
                                       model.flush_shutdown);
          ASSERT_LE(model.latency.total, model.requests);
          ASSERT_LE(model.largest_batch, 8u);
        }
        std::this_thread::yield();
      }
    });
  }
  for (auto& client : clients) client.join();
  done.store(true, std::memory_order_release);
  for (auto& poller : pollers) poller.join();
  pool.shutdown();
  EXPECT_EQ(pool.stats().requests, kClients * kRequestsPerClient);
}

}  // namespace
}  // namespace disthd::serve
