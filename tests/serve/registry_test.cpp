// ModelRegistry contract + multi-model concurrency stress (ISSUE 4).
//
// Unit part: create-or-get registration, lock-free lookup, stable slot
// references across later registrations, name listing.
//
// Stress part (also run under the ThreadSanitizer CI job): a writer thread
// keeps REGISTERING new models and PUBLISHING fresh snapshots to existing
// ones while reader threads hammer registry lookups and engine predicts
// across every model. For each response the test proves cross-model
// attributability: its version maps to a snapshot the writer recorded FOR
// THAT MODEL, and re-scoring the query against that recorded snapshot
// reproduces label and score bit-for-bit — impossible if the registry ever
// routed a request to the wrong model's slot or tore a lookup during a
// concurrent registration.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "hd/encoder.hpp"
#include "hd/model.hpp"
#include "serve/inference_engine.hpp"
#include "serve/model_registry.hpp"
#include "util/rng.hpp"

namespace disthd::serve {
namespace {

constexpr std::size_t kFeatures = 8;
constexpr std::size_t kDim = 32;
constexpr std::size_t kClasses = 3;

core::HdcClassifier make_classifier(std::uint64_t seed) {
  auto encoder = std::make_unique<hd::RbfEncoder>(kFeatures, kDim, seed);
  hd::ClassModel model(kClasses, kDim);
  util::Rng rng(seed ^ 0xABC);
  model.mutable_class_vectors().fill_normal(rng, 0.0, 1.0);
  model.refresh_norms();
  return core::HdcClassifier(std::move(encoder), std::move(model));
}

std::vector<float> query(std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> features(kFeatures);
  for (auto& f : features) f = static_cast<float>(rng.normal());
  return features;
}

TEST(ModelRegistry, RegisterIsCreateOrGet) {
  ModelRegistry registry;
  EXPECT_TRUE(registry.empty());
  SnapshotSlot& slot = registry.register_model("a");
  EXPECT_EQ(&registry.register_model("a"), &slot);  // idempotent
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_THROW(registry.register_model(""), std::invalid_argument);
}

TEST(ModelRegistry, FindIsLockFreeLookup) {
  ModelRegistry registry;
  EXPECT_EQ(registry.find("missing"), nullptr);
  SnapshotSlot& slot = registry.register_model("a");
  const auto found = registry.find("a");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found.get(), &slot);
  EXPECT_EQ(registry.current("a"), nullptr);  // registered, not published
  slot.publish(make_classifier(1));
  ASSERT_NE(registry.current("a"), nullptr);
  EXPECT_EQ(registry.current("a")->version, 1u);
  EXPECT_EQ(registry.current("missing"), nullptr);
}

TEST(ModelRegistry, SlotReferencesSurviveLaterRegistrations) {
  ModelRegistry registry;
  SnapshotSlot& first = registry.register_model("first");
  first.publish(make_classifier(1));
  const auto held = registry.find("first");
  for (int i = 0; i < 64; ++i) {
    registry.register_model("model-" + std::to_string(i));
  }
  // The early slot (by reference and by shared_ptr) is untouched by the
  // copy-on-write map swaps behind the 64 registrations.
  EXPECT_EQ(&first, registry.find("first").get());
  EXPECT_EQ(held.get(), &first);
  EXPECT_EQ(first.latest_version(), 1u);
  EXPECT_EQ(registry.size(), 65u);
}

TEST(ModelRegistry, NamesAreSorted) {
  ModelRegistry registry;
  registry.register_model("pamap2");
  registry.register_model("cardio");
  registry.register_model("mnist");
  EXPECT_EQ(registry.names(),
            (std::vector<std::string>{"cardio", "mnist", "pamap2"}));
}

TEST(RegistryStress, ConcurrentRegisterPublishLookupPredictAcrossModels) {
  constexpr std::size_t kModels = 3;           // predict targets
  constexpr std::size_t kPublishRounds = 12;   // republishes per model
  constexpr std::size_t kExtraModels = 24;     // registered mid-flight
  constexpr std::size_t kReaders = 4;
  constexpr std::size_t kQueriesPerReader = 90;

  ModelRegistry registry;
  std::vector<std::string> names;
  for (std::size_t m = 0; m < kModels; ++m) {
    names.push_back("model-" + std::to_string(m));
    registry.register_model(names.back()).publish(make_classifier(m + 1));
  }

  // Writer-recorded history: (model, version) -> immutable snapshot. Only
  // the writer thread touches it while readers run; readers consult it
  // after joining.
  std::map<std::pair<std::string, std::uint64_t>,
           std::shared_ptr<const ModelSnapshot>> history;
  for (const auto& name : names) {
    history[{name, 1}] = registry.current(name);
  }

  InferenceEngineConfig config;
  config.max_batch = 16;
  config.workers = 2;
  config.flush_deadline = std::chrono::microseconds(100);
  InferenceEngine engine(registry, config);

  std::thread writer([&] {
    std::uint64_t seed = 1000;
    for (std::size_t round = 0; round < kPublishRounds; ++round) {
      for (std::size_t m = 0; m < kModels; ++m) {
        const auto version =
            registry.find(names[m])->publish(make_classifier(++seed));
        history[{names[m], version}] = registry.current(names[m]);
      }
      // Interleave registrations so reader lookups race the copy-on-write
      // map swap, not just the per-slot publishes.
      for (std::size_t e = 0; e < kExtraModels / kPublishRounds + 1; ++e) {
        registry.register_model("extra-" + std::to_string(round) + "-" +
                                std::to_string(e));
      }
    }
  });

  struct Record {
    std::size_t model = 0;
    std::uint64_t query_seed = 0;
    PredictResult result;
  };
  std::vector<std::vector<Record>> per_reader(kReaders);
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (std::size_t reader = 0; reader < kReaders; ++reader) {
    readers.emplace_back([&, reader] {
      auto& log = per_reader[reader];
      log.reserve(kQueriesPerReader);
      for (std::size_t q = 0; q < kQueriesPerReader; ++q) {
        Record record;
        record.model = (reader + q) % kModels;
        record.query_seed = reader * 1000 + q;
        PredictRequest request;
        request.model = names[record.model];
        request.features = query(record.query_seed);
        request.top_k = 2;
        record.result = engine.predict(std::move(request));
        log.push_back(std::move(record));
        // Lookups race registrations; a found slot must always be usable.
        const auto slot = registry.find(names[q % kModels]);
        ASSERT_NE(slot, nullptr);
        ASSERT_GE(slot->latest_version(), 1u);
      }
    });
  }
  for (auto& reader : readers) reader.join();
  writer.join();
  engine.shutdown();

  for (std::size_t reader = 0; reader < kReaders; ++reader) {
    // Versions are monotone per (client, model) sequence.
    std::vector<std::uint64_t> last_version(kModels, 0);
    for (const auto& record : per_reader[reader]) {
      const auto& result = record.result;
      ASSERT_GE(result.version, last_version[record.model])
          << "reader " << reader;
      last_version[record.model] = result.version;
      // Attributable to a publish of the RIGHT model...
      const auto found =
          history.find({names[record.model], result.version});
      ASSERT_NE(found, history.end())
          << "response cites version " << result.version
          << " never published for " << names[record.model];
      // ...and bit-identical to that snapshot's own scoring.
      util::Matrix one_row(1, kFeatures);
      const auto q = query(record.query_seed);
      std::copy(q.begin(), q.end(), one_row.row(0).begin());
      util::Matrix features = one_row, encoded, scores;
      found->second->score_raw(features, encoded, scores);
      ASSERT_EQ(result.top.size(), 2u);
      const auto row = scores.row(0);
      std::size_t best = 0;
      for (std::size_t c = 1; c < row.size(); ++c) {
        if (row[c] > row[best]) best = c;
      }
      ASSERT_EQ(result.top[0].label, static_cast<int>(best));
      ASSERT_EQ(result.top[0].score, row[best]);
    }
  }
  EXPECT_GE(registry.size(), kModels + kExtraModels);
}

}  // namespace
}  // namespace disthd::serve
