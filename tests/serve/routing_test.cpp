// Consistent-hash routing contract (serve/routing.hpp): the properties
// EnginePool's model affinity depends on.
//
//   - Determinism ACROSS PROCESSES: the hash is fully specified (FNV-1a +
//     SplitMix64), so golden values pinned here hold on every platform and
//     standard library — two serve processes always agree on a route.
//   - Stability under resize: growing the pool N -> N+1 moves only the
//     models whose new score wins, all of them TO the new engine, in
//     expectation K/(N+1) of K models (modulo would re-home nearly all).
//   - Balance: rendezvous scores spread models roughly evenly.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "serve/routing.hpp"

namespace disthd::serve {
namespace {

TEST(Routing, Fnv1a64MatchesPublishedVectors) {
  // Standard FNV-1a test vectors; if these move, saved routes rot.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ull);
}

TEST(Routing, SingleBucketAlwaysRoutesToZero) {
  EXPECT_EQ(rendezvous_route("anything", 1), 0u);
  EXPECT_EQ(rendezvous_route("", 1), 0u);
}

TEST(Routing, RouteIsTheArgmaxOfRendezvousScores) {
  const std::string name = "pamap2";
  const std::size_t buckets = 5;
  const std::size_t route = rendezvous_route(name, buckets);
  const std::uint64_t key = fnv1a64(name);
  for (std::size_t bucket = 0; bucket < buckets; ++bucket) {
    EXPECT_LE(rendezvous_score(key, bucket), rendezvous_score(key, route));
  }
}

TEST(Routing, GoldenRoutesPinCrossProcessDeterminism) {
  // Pinned observed values: a change here breaks route agreement between
  // processes built from different commits — treat as a protocol break.
  EXPECT_EQ(rendezvous_route("pamap2", 4), 2u);
  EXPECT_EQ(rendezvous_route("mnist", 4), 0u);
  EXPECT_EQ(rendezvous_route("isolet", 4), 3u);
  EXPECT_EQ(rendezvous_route("online", 8), 1u);
  EXPECT_EQ(rendezvous_route("default", 2), 0u);
}

TEST(Routing, GoldenRoutesForRouterShardingFixture) {
  // The model set the disthd_router e2e test serves. Pinned at N=2 and
  // N=3 so the cross-process test can assert EXACT placement (which
  // backend's stats counters move) and the resize property in the small:
  // growing 2 -> 3 backends re-homes ONLY "m2", onto the new backend.
  EXPECT_EQ(rendezvous_route("default", 2), 0u);
  EXPECT_EQ(rendezvous_route("m2", 2), 0u);
  EXPECT_EQ(rendezvous_route("alpha", 2), 1u);
  EXPECT_EQ(rendezvous_route("default", 3), 0u);
  EXPECT_EQ(rendezvous_route("m2", 3), 2u);
  EXPECT_EQ(rendezvous_route("alpha", 3), 1u);
}

TEST(Routing, ResizeMovesOnlyOntoTheNewBucket) {
  constexpr std::size_t kModels = 512;
  std::vector<std::string> names;
  names.reserve(kModels);
  for (std::size_t m = 0; m < kModels; ++m) {
    names.push_back("model-" + std::to_string(m));
  }
  for (std::size_t buckets = 1; buckets <= 7; ++buckets) {
    std::size_t moved = 0;
    for (const auto& name : names) {
      const std::size_t before = rendezvous_route(name, buckets);
      const std::size_t after = rendezvous_route(name, buckets + 1);
      if (before != after) {
        // A model only ever moves TO the newly added bucket.
        EXPECT_EQ(after, buckets) << name << " at " << buckets;
        ++moved;
      }
    }
    // Expectation is K/(N+1); allow a 2x band. (Modulo hashing would move
    // ~K*N/(N+1) — the property this asserts is what makes resize cheap.)
    const double expected =
        static_cast<double>(kModels) / static_cast<double>(buckets + 1);
    EXPECT_GT(moved, expected / 2) << "buckets " << buckets;
    EXPECT_LT(moved, expected * 2) << "buckets " << buckets;
  }
}

TEST(Routing, RankIsAPermutationHeadedByTheRoute) {
  for (std::size_t buckets = 1; buckets <= 9; ++buckets) {
    for (const char* name : {"default", "alpha", "m2", "workload-77"}) {
      const std::vector<std::size_t> rank = rendezvous_rank(name, buckets);
      ASSERT_EQ(rank.size(), buckets) << name;
      // rank[0] IS the single-winner route — replicas=1 must route
      // identically to the pre-replication router.
      EXPECT_EQ(rank.front(), rendezvous_route(name, buckets)) << name;
      std::vector<std::size_t> sorted = rank;
      std::sort(sorted.begin(), sorted.end());
      for (std::size_t at = 0; at < buckets; ++at) {
        ASSERT_EQ(sorted[at], at) << name << " is not a permutation";
      }
    }
  }
}

TEST(Routing, RankKeepsRelativeOrderWhenBucketsGrow) {
  // Appending bucket N+1 may INSERT it anywhere in a key's order, but the
  // old buckets' relative order is untouched — per-bucket scores don't
  // depend on the bucket count. This is what makes replica sets (the first
  // R entries) stable under growth: a model's replica set changes only by
  // the new bucket entering it, never by two old buckets swapping.
  for (std::size_t buckets = 1; buckets <= 8; ++buckets) {
    for (std::size_t m = 0; m < 64; ++m) {
      const std::string name = "model-" + std::to_string(m);
      std::vector<std::size_t> before = rendezvous_rank(name, buckets);
      std::vector<std::size_t> after = rendezvous_rank(name, buckets + 1);
      after.erase(std::find(after.begin(), after.end(), buckets));
      EXPECT_EQ(after, before) << name << " at " << buckets;
    }
  }
}

TEST(Routing, RankPinsReplicaPairsForE2eModels) {
  // Replica-set goldens for the e2e fixture models, mirroring the pinned
  // single routes above: with --replicas 2 these pairs are the two
  // backends each model may be answered from. A hash change shows up here
  // before it shows up as a flaky failover e2e.
  using Rank = std::vector<std::size_t>;
  EXPECT_EQ(rendezvous_rank("default", 2), (Rank{0, 1}));
  EXPECT_EQ(rendezvous_rank("alpha", 2), (Rank{1, 0}));
  EXPECT_EQ(rendezvous_rank("m2", 2), (Rank{0, 1}));
  // At three backends, m2's order leads with the new bucket (it re-homes);
  // default and alpha keep their winner.
  EXPECT_EQ(rendezvous_rank("default", 3).front(), 0u);
  EXPECT_EQ(rendezvous_rank("alpha", 3).front(), 1u);
  EXPECT_EQ(rendezvous_rank("m2", 3).front(), 2u);
}

TEST(Routing, SpreadsModelsAcrossBuckets) {
  constexpr std::size_t kModels = 4096;
  constexpr std::size_t kBuckets = 8;
  std::vector<std::size_t> per_bucket(kBuckets, 0);
  for (std::size_t m = 0; m < kModels; ++m) {
    ++per_bucket[rendezvous_route("workload-" + std::to_string(m), kBuckets)];
  }
  for (std::size_t bucket = 0; bucket < kBuckets; ++bucket) {
    // Expected 512 per bucket; a generous band still catches a broken mix
    // (which collapses to one or two buckets).
    EXPECT_GT(per_bucket[bucket], 256u) << "bucket " << bucket;
    EXPECT_LT(per_bucket[bucket], 768u) << "bucket " << bucket;
  }
}

}  // namespace
}  // namespace disthd::serve
