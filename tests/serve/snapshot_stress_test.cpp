// Snapshot-consistency stress (ISSUE 3 satellite).
//
// The adversarial schedule for lock-free serving: reader threads hammer the
// engine while a writer thread runs OnlineDistHD::partial_fit with
// dimension regeneration EVERY chunk (regen rewrites encoder columns and
// model columns together — the exact state a torn read would expose) and
// publishes a snapshot after each chunk. The test then proves three
// properties for every response:
//   1. attributability — its version names a snapshot the writer actually
//      published (the test records them all);
//   2. consistency — re-scoring the same query against that recorded
//      snapshot reproduces the label and score bit-for-bit, which could not
//      hold had the engine mixed encoder state from one publish with model
//      state from another;
//   3. per-client monotonicity — versions never move backwards within one
//      client's response sequence.
// Also run under the ThreadSanitizer CI job, where any unsynchronized
// slot/engine access trips the race detector directly.
#include <gtest/gtest.h>

#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/online_trainer.hpp"
#include "data/synthetic.hpp"
#include "serve/inference_engine.hpp"
#include "serve/learn/trainer_plane.hpp"
#include "serve/model_registry.hpp"
#include "serve/online_publish.hpp"

namespace disthd::serve {
namespace {

constexpr std::size_t kFeatures = 16;
constexpr std::size_t kClasses = 4;
constexpr std::size_t kDim = 64;
constexpr std::size_t kChunk = 24;
constexpr std::size_t kChunks = 14;
constexpr std::size_t kReaders = 4;
constexpr std::size_t kQueriesPerReader = 120;

struct RecordedResponse {
  std::size_t query = 0;
  PredictResult response;
};

TEST(SnapshotStress, ConcurrentPartialFitWithRegenNeverTearsReads) {
  data::SyntheticSpec spec;
  spec.num_features = kFeatures;
  spec.num_classes = kClasses;
  spec.train_size = kChunk * kChunks;
  spec.test_size = 64;  // reader query pool
  spec.latent_dim = 6;
  spec.seed = 77;
  const auto workload = data::make_synthetic(spec);

  core::OnlineDistHDConfig config;
  config.dim = kDim;
  config.epochs_per_chunk = 1;
  config.regen_every_chunks = 1;  // regenerate on EVERY chunk
  config.reservoir_capacity = 256;
  config.seed = 9;
  core::OnlineDistHD learner(kFeatures, kClasses, config);

  // First chunk + publish before serving starts (the slot must be primed).
  ModelRegistry registry;
  SnapshotSlot& slot = registry.register_model("online");
  std::uint64_t published_revision = 0;
  std::vector<std::size_t> first_rows(kChunk);
  for (std::size_t i = 0; i < kChunk; ++i) first_rows[i] = i;
  learner.partial_fit(
      workload.train.features.gather_rows(first_rows),
      std::span<const int>(workload.train.labels.data(), kChunk));
  ASSERT_GT(publish_online(slot, learner, published_revision), 0u);

  // Writer-recorded history: version -> immutable snapshot. Only the writer
  // thread touches it while readers run; readers consult it after joining.
  std::map<std::uint64_t, std::shared_ptr<const ModelSnapshot>> history;
  history[slot.latest_version()] = slot.current();

  InferenceEngineConfig engine_config;
  engine_config.max_batch = 16;
  engine_config.workers = 2;
  engine_config.flush_deadline = std::chrono::microseconds(100);
  InferenceEngine engine(registry, engine_config);

  std::thread writer([&] {
    for (std::size_t chunk = 1; chunk < kChunks; ++chunk) {
      std::vector<std::size_t> rows(kChunk);
      for (std::size_t i = 0; i < kChunk; ++i) rows[i] = chunk * kChunk + i;
      learner.partial_fit(
          workload.train.features.gather_rows(rows),
          std::span<const int>(workload.train.labels.data() + chunk * kChunk,
                               kChunk));
      const auto version = publish_online(slot, learner, published_revision);
      ASSERT_GT(version, 0u);
      history[version] = slot.current();
    }
  });

  std::vector<std::vector<RecordedResponse>> per_reader(kReaders);
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (std::size_t reader = 0; reader < kReaders; ++reader) {
    readers.emplace_back([&, reader] {
      auto& log = per_reader[reader];
      log.reserve(kQueriesPerReader);
      for (std::size_t q = 0; q < kQueriesPerReader; ++q) {
        const std::size_t row =
            (reader * 31 + q) % workload.test.features.rows();
        RecordedResponse record;
        record.query = row;
        record.response = engine.predict(workload.test.features.row(row));
        log.push_back(record);
      }
    });
  }
  for (auto& reader : readers) reader.join();
  writer.join();
  engine.shutdown();

  std::size_t distinct_versions_seen = 0;
  std::vector<bool> seen(kChunks + 2, false);
  for (std::size_t reader = 0; reader < kReaders; ++reader) {
    std::uint64_t last_version = 0;
    for (const auto& record : per_reader[reader]) {
      const auto& response = record.response;
      // (3) versions are monotone within each client's sequence.
      ASSERT_GE(response.version, last_version) << "reader " << reader;
      last_version = response.version;
      // (1) every response maps to a recorded publish.
      const auto found = history.find(response.version);
      ASSERT_NE(found, history.end())
          << "response cites unpublished version " << response.version;
      if (!seen[response.version]) {
        seen[response.version] = true;
        ++distinct_versions_seen;
      }
      // (2) re-scoring against that snapshot reproduces the answer
      // bit-for-bit — impossible after a torn encoder/model read.
      const auto& classifier = found->second->classifier;
      util::Matrix one_row(1, kFeatures);
      std::copy(workload.test.features.row(record.query).begin(),
                workload.test.features.row(record.query).end(),
                one_row.row(0).begin());
      util::Matrix scores;
      classifier.scores_batch(one_row, scores);
      int best = 0;
      for (std::size_t c = 1; c < kClasses; ++c) {
        if (scores(0, c) > scores(0, best)) best = static_cast<int>(c);
      }
      ASSERT_EQ(response.label(), best);
      ASSERT_EQ(response.score(), scores(0, static_cast<std::size_t>(best)));
    }
  }
  // The learner regenerated dimensions while serving (the hard part), and
  // at least one reader observed the model moving underneath it.
  EXPECT_GT(learner.total_regenerated(), 0u);
  EXPECT_EQ(history.size(), kChunks);
  EXPECT_GE(distinct_versions_seen, 1u);
}

// The same three properties, but through the LIVE TRAINING PLANE (ISSUE 9):
// the writer feeds rows down the train-verb ingest path while the plane's
// own trainer thread chunks, fits with regeneration on EVERY publish, and
// publishes through the slot — i.e. the exact thread topology a serving
// process runs when clients stream `train` lines at it. The publish
// observer (called under the train lock) records every version the plane
// ever makes visible, so attributability is checked against the plane's
// real output, not a test-side re-simulation. Re-scoring goes through
// ModelSnapshot::score_raw because plane snapshots fold in the first-chunk
// scaler — a bare classifier re-score would diverge on the scaled path.
TEST(SnapshotStress, TrainPlaneIngestRacesPredictWithoutTearingReads) {
  data::SyntheticSpec spec;
  spec.num_features = kFeatures;
  spec.num_classes = kClasses;
  spec.train_size = kChunk * kChunks;
  spec.test_size = 64;
  spec.latent_dim = 6;
  spec.seed = 78;
  const auto workload = data::make_synthetic(spec);

  ModelRegistry registry;
  learn::TrainerPlane plane(registry);
  learn::OnlineLearnerConfig config;
  config.learner.dim = kDim;
  config.learner.epochs_per_chunk = 1;
  config.learner.regen_every_chunks = 1;  // regenerate on EVERY chunk
  config.learner.reservoir_capacity = 256;
  config.learner.seed = 9;
  config.buffer_capacity = kChunk * kChunks;  // no shedding in this race
  config.chunk_rows = kChunk;
  config.publish_rows = 1;  // publish every chunk
  learn::OnlineLearnerSlot& learner =
      plane.attach_learner("online", kFeatures, kClasses, config);

  // version -> immutable snapshot, recorded by the plane's own publish
  // hook. The trainer thread writes it; the main thread reads after stop().
  std::mutex history_mutex;
  std::map<std::uint64_t, std::shared_ptr<const ModelSnapshot>> history;
  learner.set_publish_observer(
      [&](std::uint64_t version,
          std::shared_ptr<const ModelSnapshot> snapshot) {
        const std::lock_guard<std::mutex> lock(history_mutex);
        history[version] = std::move(snapshot);
      });

  // Prime the slot: first chunk through the ingest path, drained
  // synchronously, so readers never race the no-snapshot window.
  for (std::size_t i = 0; i < kChunk; ++i) {
    plane.ingest("online", workload.train.features.row(i),
                 workload.train.labels[i]);
  }
  plane.drain("online");
  ASSERT_GE(registry.find("online")->latest_version(), 1u);

  InferenceEngineConfig engine_config;
  engine_config.max_batch = 16;
  engine_config.workers = 2;
  engine_config.flush_deadline = std::chrono::microseconds(100);
  InferenceEngine engine(registry, engine_config);
  plane.start();

  std::thread writer([&] {
    for (std::size_t row = kChunk; row < kChunk * kChunks; ++row) {
      plane.ingest("online", workload.train.features.row(row),
                   workload.train.labels[row]);
    }
  });

  std::vector<std::vector<RecordedResponse>> per_reader(kReaders);
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (std::size_t reader = 0; reader < kReaders; ++reader) {
    readers.emplace_back([&, reader] {
      auto& log = per_reader[reader];
      log.reserve(kQueriesPerReader);
      for (std::size_t q = 0; q < kQueriesPerReader; ++q) {
        const std::size_t row =
            (reader * 37 + q) % workload.test.features.rows();
        RecordedResponse record;
        record.query = row;
        record.response = engine.predict(workload.test.features.row(row));
        log.push_back(record);
      }
    });
  }
  for (auto& reader : readers) reader.join();
  writer.join();
  plane.stop();  // joins the trainer thread and flushes the tail
  engine.shutdown();

  const auto stats = learner.stats();
  EXPECT_EQ(stats.trained_rows, kChunk * kChunks);
  EXPECT_EQ(stats.dropped_rows, 0u);  // buffer sized for the whole stream
  EXPECT_EQ(stats.buffer_rows, 0u);
  EXPECT_EQ(stats.publishes, history.size());
  EXPECT_GE(stats.publishes, 2u);  // interleaved traffic saw a live stream
  EXPECT_GT(stats.total_regenerated, 0u);

  for (std::size_t reader = 0; reader < kReaders; ++reader) {
    std::uint64_t last_version = 0;
    for (const auto& record : per_reader[reader]) {
      const auto& response = record.response;
      // (3) versions are monotone within each client's sequence.
      ASSERT_GE(response.version, last_version) << "reader " << reader;
      last_version = response.version;
      // (1) every response maps to a plane-published version.
      const auto found = history.find(response.version);
      ASSERT_NE(found, history.end())
          << "response cites unpublished version " << response.version;
      // (2) the full snapshot pipeline (scaler + encoder + backend sweep)
      // reproduces the answer bit-for-bit against the recorded snapshot.
      util::Matrix one_row(1, kFeatures);
      std::copy(workload.test.features.row(record.query).begin(),
                workload.test.features.row(record.query).end(),
                one_row.row(0).begin());
      util::Matrix encoded;
      util::Matrix scores;
      found->second->score_raw(one_row, encoded, scores);
      int best = 0;
      for (std::size_t c = 1; c < kClasses; ++c) {
        if (scores(0, c) > scores(0, best)) best = static_cast<int>(c);
      }
      ASSERT_EQ(response.label(), best);
      ASSERT_EQ(response.score(), scores(0, static_cast<std::size_t>(best)));
    }
  }
}

}  // namespace
}  // namespace disthd::serve
