// Per-model serving statistics contract (serve/engine_stats.hpp): histogram
// bucketing, quantile interpolation, flush-reason attribution, atomic-copy
// cell snapshots, merge semantics, and the "#stats" line format.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "serve/engine_stats.hpp"
#include "serve/line_protocol.hpp"

namespace disthd::serve {
namespace {

TEST(EngineStatsHistogram, BatchSizesBucketByPowerOfTwo) {
  EXPECT_EQ(BatchSizeHistogram::bucket_for(0), 0u);
  EXPECT_EQ(BatchSizeHistogram::bucket_for(1), 0u);
  EXPECT_EQ(BatchSizeHistogram::bucket_for(2), 1u);
  EXPECT_EQ(BatchSizeHistogram::bucket_for(3), 1u);
  EXPECT_EQ(BatchSizeHistogram::bucket_for(4), 2u);
  EXPECT_EQ(BatchSizeHistogram::bucket_for(64), 6u);
  EXPECT_EQ(BatchSizeHistogram::bucket_for(100), 6u);
  // Open-ended last bucket.
  EXPECT_EQ(BatchSizeHistogram::bucket_for(1u << 20),
            BatchSizeHistogram::kBuckets - 1);
  EXPECT_EQ(BatchSizeHistogram::bucket_lower(0), 1u);
  EXPECT_EQ(BatchSizeHistogram::bucket_lower(6), 64u);

  BatchSizeHistogram hist;
  hist.record(1);
  hist.record(1);
  hist.record(5);
  EXPECT_EQ(hist.counts[0], 2u);
  EXPECT_EQ(hist.counts[2], 1u);
}

TEST(EngineStatsHistogram, LatencyQuantilesInterpolateWithinBuckets) {
  LatencyHistogram hist;
  EXPECT_EQ(hist.quantile(0.5), 0.0);  // empty
  for (int i = 0; i < 1000; ++i) hist.record(100.0);
  // Geometric buckets are 2^(1/4) wide (~19%); the quantile must land in
  // the 100 us bucket.
  EXPECT_NEAR(hist.quantile(0.50), 100.0, 20.0);
  EXPECT_NEAR(hist.quantile(0.99), 100.0, 20.0);
  EXPECT_DOUBLE_EQ(hist.mean_us(), 100.0);
  EXPECT_EQ(hist.total, 1000u);
}

TEST(EngineStatsHistogram, TailQuantileSeparatesFromTheBody) {
  LatencyHistogram hist;
  for (int i = 0; i < 900; ++i) hist.record(10.0);
  for (int i = 0; i < 100; ++i) hist.record(5000.0);
  EXPECT_NEAR(hist.quantile(0.50), 10.0, 2.5);
  EXPECT_NEAR(hist.quantile(0.99), 5000.0, 1000.0);
  // Sub-microsecond samples land in the underflow bucket and report ~0.
  LatencyHistogram fast;
  fast.record(0.2);
  EXPECT_EQ(fast.quantile(0.5), 0.0);
}

TEST(EngineStats, FlushReasonsAndBatchShapeAccumulate) {
  ModelStatsCell cell("m");
  cell.record_flush(64, FlushReason::full);
  cell.record_flush(64, FlushReason::full);
  cell.record_flush(7, FlushReason::deadline);
  cell.record_flush(3, FlushReason::preempted);
  cell.record_flush(1, FlushReason::shutdown);
  const ModelStats stats = cell.snapshot();
  EXPECT_EQ(stats.model, "m");
  EXPECT_EQ(stats.requests, 139u);
  EXPECT_EQ(stats.batches, 5u);
  EXPECT_EQ(stats.largest_batch, 64u);
  EXPECT_EQ(stats.flush_full, 2u);
  EXPECT_EQ(stats.flush_deadline, 1u);
  EXPECT_EQ(stats.flush_preempted, 1u);
  EXPECT_EQ(stats.flush_shutdown, 1u);
  EXPECT_NEAR(stats.mean_batch_size(), 139.0 / 5.0, 1e-9);
  EXPECT_EQ(stats.batch_sizes.counts[6], 2u);  // the two 64-row batches
  EXPECT_EQ(stats.batch_sizes.counts[0], 1u);
}

TEST(EngineStats, MergeSumsCountersAndHistograms) {
  ModelStatsCell a("m");
  ModelStatsCell b("m");
  a.record_flush(8, FlushReason::full);
  a.record_latencies({10.0, 20.0});
  b.record_flush(2, FlushReason::deadline);
  b.record_latencies({30.0});
  ModelStats merged = a.snapshot();
  merged.merge(b.snapshot());
  EXPECT_EQ(merged.requests, 10u);
  EXPECT_EQ(merged.batches, 2u);
  EXPECT_EQ(merged.largest_batch, 8u);
  EXPECT_EQ(merged.flush_full, 1u);
  EXPECT_EQ(merged.flush_deadline, 1u);
  EXPECT_EQ(merged.latency.total, 3u);
  EXPECT_DOUBLE_EQ(merged.latency.sum_us, 60.0);
}

// The atomic-copy contract: concurrent snapshot() readers racing writers
// must always observe internally consistent stats (requests/batches move
// together under one mutex). Run under the TSan CI job with the other
// serve suites; the invariant checks below catch torn copies even without
// the sanitizer.
TEST(EngineStats, SnapshotReadersRaceRecordingWriters) {
  ModelStatsCell cell("raced");
  constexpr int kBatches = 400;
  std::thread writer([&] {
    for (int i = 0; i < kBatches; ++i) {
      cell.record_flush(4, FlushReason::full);
      cell.record_latencies({1.0, 2.0, 3.0, 4.0});
    }
  });
  std::thread reader([&] {
    std::uint64_t last_requests = 0;
    for (int i = 0; i < 2000; ++i) {
      const ModelStats stats = cell.snapshot();
      // Counters only grow, and a snapshot is never torn: every flush
      // records 4 requests and 1 batch atomically.
      ASSERT_GE(stats.requests, last_requests);
      ASSERT_EQ(stats.requests, stats.batches * 4);
      ASSERT_LE(stats.latency.total, stats.requests);
      last_requests = stats.requests;
    }
  });
  writer.join();
  reader.join();
  const ModelStats final_stats = cell.snapshot();
  EXPECT_EQ(final_stats.requests, static_cast<std::uint64_t>(kBatches) * 4);
  EXPECT_EQ(final_stats.latency.total,
            static_cast<std::uint64_t>(kBatches) * 4);
}

TEST(EngineStats, FormatsTheStatsVerbResponseLine) {
  ModelStatsCell cell("pamap2");
  cell.record_flush(64, FlushReason::full);
  cell.record_flush(6, FlushReason::deadline);
  const std::string line = format_model_stats(cell.snapshot());
  // A "#"-prefixed comment line, so stats interleave into any response
  // stream without breaking v1 consumers.
  EXPECT_EQ(line.rfind("#stats model=pamap2 requests=70 batches=2 "
                       "mean_batch=35.00 largest_batch=64",
                       0),
            0u)
      << line;
  EXPECT_NE(line.find("flush_full=1"), std::string::npos);
  EXPECT_NE(line.find("flush_deadline=1"), std::string::npos);
  EXPECT_NE(line.find("flush_preempted=0"), std::string::npos);
  EXPECT_NE(line.find("p50_us="), std::string::npos);
}

}  // namespace
}  // namespace disthd::serve
