// Top-k / score-vector parity (ISSUE 4 satellite).
//
// topk=2 and scores=1 responses are computed inside process_batch from the
// SAME fused scores sweep as the top-1 fast path, so they must re-score
// offline bit-for-bit: every ranked (label, score) pair equals repeated
// first-strict-max selection over HdcClassifier::scores_batch's row, and
// the full score vector equals that row verbatim. The last suite drives the
// DistHD α/β/γ consumer (paper §III-B): top-2 read from a served result
// buckets samples into correct/partial/incorrect exactly like
// core::categorize_top2 does offline against the same model.
#include <gtest/gtest.h>

#include <future>
#include <vector>

#include "core/categorize.hpp"
#include "core/disthd_trainer.hpp"
#include "data/loaders.hpp"
#include "serve/inference_engine.hpp"
#include "serve/model_registry.hpp"

namespace disthd::serve {
namespace {

data::Dataset fixture_dataset(const char* name) {
  return data::load_csv_labeled(std::string(DISTHD_FIXTURE_DIR) + "/" + name,
                                /*has_header=*/true);
}

const core::HdcClassifier& reference_classifier() {
  static const core::HdcClassifier classifier = [] {
    const auto train = fixture_dataset("synth_train.csv");
    core::DistHDConfig config;
    config.dim = 96;
    config.iterations = 12;
    config.regen_every = 3;
    config.polish_epochs = 2;
    config.seed = 5;
    core::DistHDTrainer trainer(config);
    return trainer.fit(train, nullptr);
  }();
  return classifier;
}

core::HdcClassifier clone_reference() {
  const auto& reference = reference_classifier();
  const auto* rbf =
      dynamic_cast<const hd::RbfEncoder*>(&reference.encoder());
  return core::HdcClassifier(std::make_unique<hd::RbfEncoder>(*rbf),
                             hd::ClassModel(reference.model()));
}

/// Offline re-scoring rule: rank i is the first strict max over the
/// not-yet-taken classes of a scores_batch row — the tie rule predict_batch
/// and ClassModel::top2 share.
std::vector<ScoredLabel> offline_topk(std::span<const float> row,
                                      std::size_t top_k) {
  std::vector<ScoredLabel> ranked;
  std::vector<bool> taken(row.size(), false);
  for (std::size_t rank = 0; rank < std::min(top_k, row.size()); ++rank) {
    std::size_t best = row.size();
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (taken[c]) continue;
      if (best == row.size() || row[c] > row[best]) best = c;
    }
    taken[best] = true;
    ranked.push_back({static_cast<int>(best), row[best]});
  }
  return ranked;
}

class TopKParity : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TopKParity, ServedTopKRescoresOfflineBitExactly) {
  const std::size_t top_k = GetParam();
  const auto& reference = reference_classifier();
  const auto test = fixture_dataset("synth_test.csv");
  util::Matrix expected_scores;
  reference.scores_batch(test.features, expected_scores);

  ModelRegistry registry;
  registry.register_model("ref").publish(clone_reference());
  InferenceEngineConfig config;
  config.max_batch = 7;  // ragged micro-batches over the 45 fixture rows
  InferenceEngine engine(registry, config);

  std::vector<std::future<PredictResult>> futures;
  futures.reserve(test.features.rows());
  for (std::size_t r = 0; r < test.features.rows(); ++r) {
    PredictRequest request;
    request.features.assign(test.features.row(r).begin(),
                            test.features.row(r).end());
    request.top_k = top_k;
    request.want_scores = true;
    futures.push_back(engine.submit(std::move(request)));
  }
  for (std::size_t r = 0; r < futures.size(); ++r) {
    const auto result = futures[r].get();
    const auto row = expected_scores.row(r);
    // Full score vector: the scores_batch row verbatim.
    ASSERT_EQ(result.scores.size(), row.size()) << "row " << r;
    for (std::size_t c = 0; c < row.size(); ++c) {
      ASSERT_EQ(result.scores[c], row[c]) << "row " << r << " class " << c;
    }
    // Ranked pairs: repeated strict-argmax over that row, bit-for-bit.
    const auto expected = offline_topk(row, top_k);
    ASSERT_EQ(result.top.size(), expected.size()) << "row " << r;
    for (std::size_t rank = 0; rank < expected.size(); ++rank) {
      ASSERT_EQ(result.top[rank].label, expected[rank].label)
          << "row " << r << " rank " << rank;
      ASSERT_EQ(result.top[rank].score, expected[rank].score)
          << "row " << r << " rank " << rank;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, TopKParity,
                         ::testing::Values(std::size_t{1}, std::size_t{2},
                                           std::size_t{3}));

TEST(TopKParity, ServedTop2DrivesTheCategorizeConsumer) {
  // The α/β/γ partial-distance diagnosis consumes top-2: true label first
  // -> correct (α region), second -> partial (β/γ), else incorrect. Bucket
  // every labeled fixture row from SERVED top-2 results and compare against
  // core::categorize_top2 on the same model and encodings.
  const auto& reference = reference_classifier();
  const auto test = fixture_dataset("synth_test.csv");

  util::Matrix encoded;
  reference.encoder().encode_batch(test.features, encoded);
  const auto offline = core::categorize_top2(
      reference.model(), encoded,
      std::span<const int>(test.labels.data(), test.labels.size()));

  ModelRegistry registry;
  registry.register_model("ref").publish(clone_reference());
  InferenceEngine engine(registry);

  std::size_t correct = 0, partial = 0, incorrect = 0;
  for (std::size_t r = 0; r < test.features.rows(); ++r) {
    PredictRequest request;
    request.features.assign(test.features.row(r).begin(),
                            test.features.row(r).end());
    request.top_k = 2;
    const auto result = engine.predict(std::move(request));
    ASSERT_EQ(result.top.size(), 2u);
    const auto& sample = offline.samples[r];
    core::Top2Category category;
    if (test.labels[r] == result.top[0].label) {
      category = core::Top2Category::correct;
      ++correct;
    } else if (test.labels[r] == result.top[1].label) {
      category = core::Top2Category::partial;
      ++partial;
    } else {
      category = core::Top2Category::incorrect;
      ++incorrect;
    }
    EXPECT_EQ(category, sample.category) << "row " << r;
    EXPECT_EQ(result.top[0].label, sample.top2.first) << "row " << r;
    EXPECT_EQ(result.top[1].label, sample.top2.second) << "row " << r;
  }
  EXPECT_EQ(correct, offline.correct_count);
  EXPECT_EQ(partial, offline.partial_count);
  EXPECT_EQ(incorrect, offline.incorrect_count);
}

}  // namespace
}  // namespace disthd::serve
