#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "svm/kernel_svm.hpp"
#include "svm/linear_svm.hpp"

namespace disthd::svm {
namespace {

data::TrainTestSplit blobs(std::size_t clusters_per_class, double spread,
                           std::uint64_t seed) {
  data::SyntheticSpec spec;
  spec.num_features = 10;
  spec.num_classes = 3;
  spec.train_size = 450;
  spec.test_size = 300;
  spec.clusters_per_class = clusters_per_class;
  spec.cluster_spread = spread;
  spec.seed = seed;
  return data::make_synthetic(spec);
}

TEST(LinearSvmConfig, Validation) {
  LinearSvmConfig config;
  config.lambda = 0.0;
  EXPECT_THROW(LinearSvm(4, 2, config), std::invalid_argument);
  config = LinearSvmConfig{};
  config.epochs = 0;
  EXPECT_THROW(LinearSvm(4, 2, config), std::invalid_argument);
}

TEST(LinearSvm, RejectsBadShapes) {
  EXPECT_THROW(LinearSvm(0, 2), std::invalid_argument);
  EXPECT_THROW(LinearSvm(4, 1), std::invalid_argument);
}

TEST(LinearSvm, LearnsSeparableBlobs) {
  const auto split = blobs(1, 0.2, 3);
  LinearSvm svm(10, 3);
  const double seconds = svm.fit(split.train);
  EXPECT_GT(seconds, 0.0);
  EXPECT_GT(svm.evaluate_accuracy(split.test), 0.95);
}

TEST(LinearSvm, ScoresShape) {
  const auto split = blobs(1, 0.2, 3);
  LinearSvm svm(10, 3);
  svm.fit(split.train);
  util::Matrix margins;
  svm.scores_batch(split.test.features, margins);
  EXPECT_EQ(margins.rows(), split.test.size());
  EXPECT_EQ(margins.cols(), 3u);
}

TEST(LinearSvm, FitRejectsShapeMismatch) {
  const auto split = blobs(1, 0.2, 3);
  LinearSvm svm(11, 3);  // wrong feature count
  EXPECT_THROW(svm.fit(split.train), std::invalid_argument);
}

TEST(LinearSvm, DeterministicGivenSeed) {
  const auto split = blobs(1, 0.4, 5);
  LinearSvmConfig config;
  config.seed = 17;
  LinearSvm a(10, 3, config), b(10, 3, config);
  a.fit(split.train);
  b.fit(split.train);
  EXPECT_EQ(a.predict_batch(split.test.features),
            b.predict_batch(split.test.features));
}

TEST(KernelSvmConfig, Validation) {
  KernelSvmConfig config;
  config.lambda = -1.0;
  EXPECT_THROW(KernelSvm{config}, std::invalid_argument);
  config = KernelSvmConfig{};
  config.gamma = -0.5;
  EXPECT_THROW(KernelSvm{config}, std::invalid_argument);
}

TEST(KernelSvm, ScoresBeforeFitThrows) {
  KernelSvm svm;
  util::Matrix features(1, 4);
  util::Matrix scores;
  EXPECT_THROW(svm.scores_batch(features, scores), std::logic_error);
}

TEST(KernelSvm, LearnsSeparableBlobs) {
  const auto split = blobs(1, 0.2, 7);
  KernelSvm svm;
  svm.fit(split.train);
  EXPECT_GT(svm.evaluate_accuracy(split.test), 0.95);
}

TEST(KernelSvm, HandlesMultiModalClassesBetterThanLinear) {
  // Multi-cluster classes are non-convex; the RBF kernel should win.
  const auto split = blobs(3, 0.45, 11);
  LinearSvm linear(10, 3);
  linear.fit(split.train);
  KernelSvm kernel;
  kernel.fit(split.train);
  EXPECT_GT(kernel.evaluate_accuracy(split.test),
            linear.evaluate_accuracy(split.test));
}

TEST(KernelSvm, SubsamplingCapsSupportSize) {
  const auto split = blobs(2, 0.5, 13);
  KernelSvmConfig config;
  config.max_train_samples = 100;
  KernelSvm svm(config);
  svm.fit(split.train);
  EXPECT_LE(svm.support_size(), 100u);
  // Still clearly better than chance.
  EXPECT_GT(svm.evaluate_accuracy(split.test), 0.55);
}

TEST(KernelSvm, ExplicitGammaHonored) {
  const auto split = blobs(1, 0.3, 17);
  KernelSvmConfig config;
  config.gamma = 0.5;
  KernelSvm svm(config);
  svm.fit(split.train);
  EXPECT_GT(svm.evaluate_accuracy(split.test), 0.8);
}

TEST(KernelSvm, FitReturnsElapsedSeconds) {
  const auto split = blobs(1, 0.3, 19);
  KernelSvm svm;
  EXPECT_GT(svm.fit(split.train), 0.0);
}

}  // namespace
}  // namespace disthd::svm
