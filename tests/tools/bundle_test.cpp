#include <gtest/gtest.h>

#include <filesystem>

#include "core/disthd_trainer.hpp"
#include "data/normalize.hpp"
#include "data/synthetic.hpp"
#include "tools_common.hpp"

namespace disthd::tools {
namespace {

class BundleTest : public ::testing::Test {
protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() / "disthd_bundle_test.bin")
                .string();
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::string path_;
};

core::HdcClassifier train_small(const data::TrainTestSplit& split) {
  core::DistHDConfig config;
  config.dim = 128;
  config.iterations = 6;
  config.seed = 3;
  core::DistHDTrainer trainer(config);
  return trainer.fit(split.train);
}

TEST_F(BundleTest, RoundTripPreservesPredictions) {
  data::SyntheticSpec spec;
  spec.num_features = 12;
  spec.num_classes = 3;
  spec.train_size = 300;
  spec.test_size = 100;
  spec.seed = 9;
  const auto split = data::make_synthetic(spec);
  const auto classifier = train_small(split);

  const std::vector<float> offset(12, 0.0f);
  const std::vector<float> scale(12, 1.0f);
  save_bundle(path_, offset, scale, classifier);

  const auto bundle = load_bundle(path_);
  ASSERT_NE(bundle.classifier, nullptr);
  util::Matrix features = split.test.features;  // identity scaler
  bundle.apply_scaler(features);
  EXPECT_EQ(bundle.classifier->predict_batch(features),
            classifier.predict_batch(split.test.features));
}

TEST_F(BundleTest, ScalerIsApplied) {
  data::SyntheticSpec spec;
  spec.num_features = 4;
  spec.num_classes = 2;
  spec.train_size = 100;
  spec.test_size = 20;
  const auto split = data::make_synthetic(spec);
  const auto classifier = train_small(split);

  const std::vector<float> offset = {1.0f, 2.0f, 3.0f, 4.0f};
  const std::vector<float> scale = {0.5f, 0.5f, 0.5f, 0.5f};
  save_bundle(path_, offset, scale, classifier);
  const auto bundle = load_bundle(path_);

  util::Matrix features(1, 4);
  features(0, 0) = 3.0f;  // (3 - 1) * 0.5 = 1
  features(0, 1) = 2.0f;  // 0
  features(0, 2) = 3.0f;  // 0
  features(0, 3) = 6.0f;  // 1
  bundle.apply_scaler(features);
  EXPECT_FLOAT_EQ(features(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(features(0, 1), 0.0f);
  EXPECT_FLOAT_EQ(features(0, 3), 1.0f);
}

TEST_F(BundleTest, FeatureCountMismatchThrows) {
  data::SyntheticSpec spec;
  spec.num_features = 4;
  spec.num_classes = 2;
  spec.train_size = 100;
  spec.test_size = 20;
  const auto split = data::make_synthetic(spec);
  const auto classifier = train_small(split);
  save_bundle(path_, std::vector<float>(4, 0.0f), std::vector<float>(4, 1.0f),
              classifier);
  const auto bundle = load_bundle(path_);
  util::Matrix wrong(1, 5);
  EXPECT_THROW(bundle.apply_scaler(wrong), std::runtime_error);
}

TEST_F(BundleTest, MissingFileThrows) {
  EXPECT_THROW(load_bundle("/nonexistent/bundle.bin"), std::runtime_error);
}

TEST_F(BundleTest, GarbageFileThrows) {
  {
    std::ofstream out(path_, std::ios::binary);
    out << "garbage data, not a bundle";
  }
  EXPECT_THROW(load_bundle(path_), std::runtime_error);
}

TEST_F(BundleTest, DefaultBackendKeepsV1Layout) {
  data::SyntheticSpec spec;
  spec.num_features = 4;
  spec.num_classes = 2;
  spec.train_size = 100;
  spec.test_size = 20;
  const auto split = data::make_synthetic(spec);
  const auto classifier = train_small(split);
  save_bundle(path_, {}, {}, classifier);
  std::ifstream in(path_, std::ios::binary);
  char magic[4];
  in.read(magic, 4);
  EXPECT_EQ(std::string(magic, 4), "DCLI");
  const auto bundle = load_bundle(path_);
  EXPECT_EQ(bundle.backend, serve::ScoringBackend::prenorm);
  EXPECT_TRUE(bundle.packed_class_vectors.empty());
}

TEST_F(BundleTest, PackedBackendRoundTripsQuantizedBits) {
  data::SyntheticSpec spec;
  spec.num_features = 12;
  spec.num_classes = 3;
  spec.train_size = 300;
  spec.test_size = 100;
  spec.seed = 9;
  const auto split = data::make_synthetic(spec);
  const auto classifier = train_small(split);
  const hd::PackedMatrix packed =
      hd::PackedMatrix::pack(classifier.model().class_vectors());

  save_bundle(path_, {}, {}, classifier, serve::ScoringBackend::packed,
              packed);
  std::ifstream in(path_, std::ios::binary);
  char magic[4];
  in.read(magic, 4);
  EXPECT_EQ(std::string(magic, 4), "DCL2");

  const auto bundle = load_bundle(path_);
  EXPECT_EQ(bundle.backend, serve::ScoringBackend::packed);
  // The serialized bits are authoritative: loading must reproduce them
  // exactly, with no re-quantization in between.
  EXPECT_EQ(bundle.packed_class_vectors, packed);
  ASSERT_NE(bundle.classifier, nullptr);
  EXPECT_EQ(bundle.classifier->predict_batch(split.test.features),
            classifier.predict_batch(split.test.features));
}

TEST_F(BundleTest, NonDefaultFloatBackendSurvivesRoundTrip) {
  data::SyntheticSpec spec;
  spec.num_features = 4;
  spec.num_classes = 2;
  spec.train_size = 100;
  spec.test_size = 20;
  const auto split = data::make_synthetic(spec);
  const auto classifier = train_small(split);
  save_bundle(path_, {}, {}, classifier, serve::ScoringBackend::float_ref);
  const auto bundle = load_bundle(path_);
  EXPECT_EQ(bundle.backend, serve::ScoringBackend::float_ref);
  EXPECT_TRUE(bundle.packed_class_vectors.empty());
}

TEST_F(BundleTest, EmptyScalerMeansIdentity) {
  data::SyntheticSpec spec;
  spec.num_features = 4;
  spec.num_classes = 2;
  spec.train_size = 100;
  spec.test_size = 20;
  const auto split = data::make_synthetic(spec);
  const auto classifier = train_small(split);
  save_bundle(path_, {}, {}, classifier);
  const auto bundle = load_bundle(path_);
  util::Matrix features(1, 4, 2.5f);
  const util::Matrix before = features;
  bundle.apply_scaler(features);
  EXPECT_EQ(features, before);
}

}  // namespace
}  // namespace disthd::tools
