#include <gtest/gtest.h>

#include "util/argparse.hpp"

namespace disthd::util {
namespace {

ArgParser make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return ArgParser(static_cast<int>(argv.size()), argv.data());
}

TEST(ArgParser, KeyValuePairs) {
  const auto args = make({"--scale", "0.5", "--seed", "7"});
  EXPECT_EQ(args.get("scale", ""), "0.5");
  EXPECT_EQ(args.get_int("seed", 0), 7);
}

TEST(ArgParser, EqualsSyntax) {
  const auto args = make({"--scale=0.25"});
  EXPECT_DOUBLE_EQ(args.get_double("scale", 0.0), 0.25);
}

TEST(ArgParser, BareFlagIsTrue) {
  const auto args = make({"--quick"});
  EXPECT_TRUE(args.get_bool("quick"));
  EXPECT_TRUE(args.has("quick"));
}

TEST(ArgParser, FlagFollowedByFlag) {
  const auto args = make({"--quick", "--verbose"});
  EXPECT_TRUE(args.get_bool("quick"));
  EXPECT_TRUE(args.get_bool("verbose"));
}

TEST(ArgParser, MissingKeyUsesFallback) {
  const auto args = make({});
  EXPECT_EQ(args.get("missing", "fallback"), "fallback");
  EXPECT_EQ(args.get_int("missing", 42), 42);
  EXPECT_DOUBLE_EQ(args.get_double("missing", 1.5), 1.5);
  EXPECT_FALSE(args.get_bool("missing"));
  EXPECT_FALSE(args.has("missing"));
}

TEST(ArgParser, PositionalArguments) {
  const auto args = make({"input.txt", "--k", "3", "output.txt"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "input.txt");
  EXPECT_EQ(args.positional()[1], "output.txt");
}

TEST(ArgParser, BoolVariants) {
  EXPECT_TRUE(make({"--a", "true"}).get_bool("a"));
  EXPECT_TRUE(make({"--a", "1"}).get_bool("a"));
  EXPECT_TRUE(make({"--a", "yes"}).get_bool("a"));
  EXPECT_TRUE(make({"--a", "on"}).get_bool("a"));
  EXPECT_FALSE(make({"--a", "false"}).get_bool("a", true));
  EXPECT_FALSE(make({"--a", "0"}).get_bool("a", true));
}

TEST(ArgParser, MalformedIntThrows) {
  const auto args = make({"--n", "abc"});
  EXPECT_THROW(args.get_int("n", 0), std::invalid_argument);
}

TEST(ArgParser, MalformedDoubleThrows) {
  const auto args = make({"--x", "xyz"});
  EXPECT_THROW(args.get_double("x", 0.0), std::invalid_argument);
}

TEST(ArgParser, NegativeNumbers) {
  const auto args = make({"--n=-5", "--x=-2.5"});
  EXPECT_EQ(args.get_int("n", 0), -5);
  EXPECT_DOUBLE_EQ(args.get_double("x", 0.0), -2.5);
}

TEST(ArgParser, LastValueWins) {
  const auto args = make({"--k", "1", "--k", "2"});
  EXPECT_EQ(args.get_int("k", 0), 2);
}

TEST(ArgParser, GetAllReturnsRepeatedValuesInOrder) {
  const auto args = make({"--model", "a=1.bin", "--x", "7", "--model",
                          "b=2.bin", "--model=c=3.bin"});
  EXPECT_EQ(args.get_all("model"),
            (std::vector<std::string>{"a=1.bin", "b=2.bin", "c=3.bin"}));
  EXPECT_EQ(args.get("model", ""), "c=3.bin");  // scalar getter: last wins
  EXPECT_TRUE(args.get_all("absent").empty());
  EXPECT_EQ(args.get_all("x"), (std::vector<std::string>{"7"}));
}

}  // namespace
}  // namespace disthd::util
