// Property tests for the open-loop arrival-process library. The bench
// harness trusts these statistics (offered rate, duty cycle, determinism);
// they are pinned here before any BENCH_serving number depends on them.
#include "util/arrivals.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace disthd::util {
namespace {

std::vector<double> gaps_of(const std::vector<double>& times) {
  std::vector<double> gaps;
  gaps.reserve(times.size());
  double prev = 0.0;
  for (double t : times) {
    gaps.push_back(t - prev);
    prev = t;
  }
  return gaps;
}

double mean_of(const std::vector<double>& xs) {
  return std::accumulate(xs.begin(), xs.end(), 0.0) / (double)xs.size();
}

TEST(Arrivals, ValidateRejectsBadConfigs) {
  ArrivalConfig bad;
  bad.rate = 0.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad.rate = -5.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);

  ArrivalConfig bursty;
  bursty.kind = ArrivalKind::bursty;
  bursty.burst_on_seconds = 0.0;
  EXPECT_THROW(bursty.validate(), std::invalid_argument);
  bursty.burst_on_seconds = 0.010;
  bursty.burst_off_seconds = -1.0;
  EXPECT_THROW(bursty.validate(), std::invalid_argument);
}

TEST(Arrivals, DutyCycleAndPeakRate) {
  ArrivalConfig poisson;
  poisson.rate = 1000.0;
  EXPECT_DOUBLE_EQ(poisson.duty_cycle(), 1.0);
  EXPECT_DOUBLE_EQ(poisson.peak_rate(), 1000.0);

  ArrivalConfig bursty;
  bursty.kind = ArrivalKind::bursty;
  bursty.rate = 1000.0;
  bursty.burst_on_seconds = 0.010;
  bursty.burst_off_seconds = 0.030;
  EXPECT_DOUBLE_EQ(bursty.duty_cycle(), 0.25);
  EXPECT_DOUBLE_EQ(bursty.peak_rate(), 4000.0);
}

TEST(Arrivals, PinnedSeedIsDeterministic) {
  for (ArrivalKind kind : {ArrivalKind::poisson, ArrivalKind::bursty}) {
    ArrivalConfig cfg;
    cfg.kind = kind;
    cfg.rate = 2000.0;
    cfg.seed = 42;
    const auto a = arrival_schedule(cfg, 5000);
    const auto b = arrival_schedule(cfg, 5000);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_DOUBLE_EQ(a[i], b[i]) << to_string(kind) << " diverges at " << i;
    }

    ArrivalConfig other = cfg;
    other.seed = 43;
    const auto c = arrival_schedule(other, 5000);
    EXPECT_NE(a, c) << to_string(kind) << ": seed must matter";
  }
}

TEST(Arrivals, TimesAreStrictlyIncreasing) {
  for (ArrivalKind kind : {ArrivalKind::poisson, ArrivalKind::bursty}) {
    ArrivalConfig cfg;
    cfg.kind = kind;
    cfg.rate = 5000.0;
    cfg.seed = 7;
    const auto times = arrival_schedule(cfg, 20000);
    double prev = 0.0;
    for (double t : times) {
      ASSERT_GT(t, prev) << to_string(kind);
      prev = t;
    }
  }
}

// The empirical mean rate over a long schedule must converge to the
// configured long-run rate — for the bursty process too, where arrivals
// happen at peak_rate inside bursts but OFF periods dilute them back down.
TEST(Arrivals, EmpiricalMeanRateMatchesConfiguredRate) {
  for (ArrivalKind kind : {ArrivalKind::poisson, ArrivalKind::bursty}) {
    for (std::uint64_t seed : {1ull, 9ull, 1234ull}) {
      ArrivalConfig cfg;
      cfg.kind = kind;
      cfg.rate = 4000.0;
      cfg.seed = seed;
      const std::size_t count = 100000;
      const auto times = arrival_schedule(cfg, count);
      const double rate = (double)count / times.back();
      EXPECT_NEAR(rate, cfg.rate, 0.05 * cfg.rate)
          << to_string(kind) << " seed " << seed;
    }
  }
}

// Bursty ON/OFF bookkeeping: the realized duty cycle converges to the
// configured one, so rate / duty really is the in-burst intensity.
TEST(Arrivals, BurstyDutyCycleConverges) {
  for (double off : {0.010, 0.030}) {
    ArrivalConfig cfg;
    cfg.kind = ArrivalKind::bursty;
    cfg.rate = 4000.0;
    cfg.burst_on_seconds = 0.010;
    cfg.burst_off_seconds = off;
    cfg.seed = 3;
    ArrivalProcess process(cfg);
    for (std::size_t i = 0; i < 100000; ++i) process.next_gap_seconds();
    const double duty =
        process.on_seconds() / (process.on_seconds() + process.off_seconds());
    EXPECT_NEAR(duty, cfg.duty_cycle(), 0.05) << "off=" << off;
  }
}

// Bursty arrivals must actually be bursty: the squared coefficient of
// variation of inter-arrival gaps is 1 for Poisson and > 1 for an
// interrupted Poisson process (the OFF periods fatten the gap tail).
TEST(Arrivals, BurstyGapsAreOverdispersedPoissonGapsAreNot) {
  ArrivalConfig cfg;
  cfg.rate = 4000.0;
  cfg.burst_off_seconds = 0.030;
  cfg.seed = 11;

  cfg.kind = ArrivalKind::poisson;
  auto pg = gaps_of(arrival_schedule(cfg, 50000));
  cfg.kind = ArrivalKind::bursty;
  auto bg = gaps_of(arrival_schedule(cfg, 50000));

  auto cv2 = [](const std::vector<double>& gaps) {
    const double m = mean_of(gaps);
    double var = 0.0;
    for (double g : gaps) var += (g - m) * (g - m);
    var /= (double)gaps.size();
    return var / (m * m);
  };
  EXPECT_NEAR(cv2(pg), 1.0, 0.1);
  EXPECT_GT(cv2(bg), 1.5);
}

// Inter-arrival independence for the Poisson process: adjacent gaps must
// be uncorrelated. With n = 50000 the lag-1 autocorrelation of an iid
// sequence concentrates within ~4/sqrt(n) < 0.02 of zero.
TEST(Arrivals, PoissonAdjacentGapsUncorrelated) {
  ArrivalConfig cfg;
  cfg.rate = 4000.0;
  cfg.seed = 5;
  const auto gaps = gaps_of(arrival_schedule(cfg, 50000));
  const double m = mean_of(gaps);
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i + 1 < gaps.size(); ++i) {
    num += (gaps[i] - m) * (gaps[i + 1] - m);
  }
  for (double g : gaps) den += (g - m) * (g - m);
  const double lag1 = num / den;
  EXPECT_LT(std::abs(lag1), 0.02);
}

// Scaling the rate scales the schedule: the process is a unit-rate process
// stretched by 1/rate, so mean gaps at 2x rate are half as long.
TEST(Arrivals, RateScalesMeanGap) {
  ArrivalConfig cfg;
  cfg.rate = 1000.0;
  cfg.seed = 21;
  const auto slow = gaps_of(arrival_schedule(cfg, 20000));
  cfg.rate = 2000.0;
  const auto fast = gaps_of(arrival_schedule(cfg, 20000));
  EXPECT_NEAR(mean_of(slow) / mean_of(fast), 2.0, 0.1);
}

}  // namespace
}  // namespace disthd::util
