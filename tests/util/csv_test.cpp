#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "util/csv.hpp"

namespace disthd::util {
namespace {

class CsvTest : public ::testing::Test {
protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "disthd_csv_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string write_file(const std::string& name, const std::string& content) {
    const auto path = (dir_ / name).string();
    std::ofstream out(path);
    out << content;
    return path;
  }

  std::filesystem::path dir_;
};

TEST(SplitCsvLine, BasicFields) {
  const auto fields = split_csv_line("a,b,c");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[2], "c");
}

TEST(SplitCsvLine, EmptyFieldsPreserved) {
  const auto fields = split_csv_line("a,,c,");
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[3], "");
}

TEST(SplitCsvLine, QuotedCommas) {
  const auto fields = split_csv_line(R"(1,"hello, world",3)");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[1], "hello, world");
}

TEST(SplitCsvLine, EscapedQuotes) {
  const auto fields = split_csv_line(R"("say ""hi""",2)");
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[0], "say \"hi\"");
}

TEST(SplitCsvLine, StripsCarriageReturn) {
  const auto fields = split_csv_line("a,b\r");
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[1], "b");
}

TEST(SplitCsvLine, CustomDelimiter) {
  const auto fields = split_csv_line("1;2;3", ';');
  ASSERT_EQ(fields.size(), 3u);
}

TEST_F(CsvTest, ReadWithHeader) {
  const auto path = write_file("t.csv", "x,y\n1,2\n3,4\n");
  const auto table = read_csv(path, /*has_header=*/true);
  ASSERT_EQ(table.header.size(), 2u);
  EXPECT_EQ(table.header[0], "x");
  ASSERT_EQ(table.num_rows(), 2u);
  EXPECT_DOUBLE_EQ(table.rows[1][1], 4.0);
}

TEST_F(CsvTest, ReadWithoutHeader) {
  const auto path = write_file("t2.csv", "1,2\n3,4\n");
  const auto table = read_csv(path, /*has_header=*/false);
  EXPECT_TRUE(table.header.empty());
  ASSERT_EQ(table.num_rows(), 2u);
  EXPECT_DOUBLE_EQ(table.rows[0][0], 1.0);
}

TEST_F(CsvTest, NonNumericCellsBecomeNaN) {
  const auto path = write_file("t3.csv", "1,abc\n2,3\n");
  const auto table = read_csv(path, false);
  EXPECT_TRUE(std::isnan(table.rows[0][1]));
  EXPECT_DOUBLE_EQ(table.rows[1][1], 3.0);
}

TEST_F(CsvTest, SkipsBlankLines) {
  const auto path = write_file("t4.csv", "1,2\n\n3,4\n");
  const auto table = read_csv(path, false);
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST_F(CsvTest, RaggedRowThrows) {
  const auto path = write_file("t5.csv", "1,2\n3\n");
  EXPECT_THROW(read_csv(path, false), std::runtime_error);
}

TEST_F(CsvTest, MissingFileThrows) {
  EXPECT_THROW(read_csv((dir_ / "nope.csv").string(), false),
               std::runtime_error);
}

TEST_F(CsvTest, NegativeAndScientificNumbers) {
  const auto path = write_file("t6.csv", "-1.5,2e3\n");
  const auto table = read_csv(path, false);
  EXPECT_DOUBLE_EQ(table.rows[0][0], -1.5);
  EXPECT_DOUBLE_EQ(table.rows[0][1], 2000.0);
}

TEST_F(CsvTest, WriteThenReadRoundTrip) {
  const auto path = (dir_ / "out.csv").string();
  write_csv(path, {"a", "b"}, {{1.5, 2.5}, {-3.0, 4.0}});
  const auto table = read_csv(path, true);
  ASSERT_EQ(table.header.size(), 2u);
  ASSERT_EQ(table.num_rows(), 2u);
  EXPECT_DOUBLE_EQ(table.rows[0][0], 1.5);
  EXPECT_DOUBLE_EQ(table.rows[1][1], 4.0);
}

TEST_F(CsvTest, WriteToUnwritablePathThrows) {
  EXPECT_THROW(write_csv("/nonexistent_dir_xyz/out.csv", {}, {{1.0}}),
               std::runtime_error);
}

}  // namespace
}  // namespace disthd::util
