// Histogram accounting for the serving bench: warm-up exclusion must be
// exact and identical however the samples are aggregated (per-recorder
// summary vs multi-client merge), because BENCH_serving.json quantiles are
// compared across closed-loop and open-loop modes.
#include "util/latency_recorder.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace disthd::util {
namespace {

TEST(LatencyRecorder, WarmupSamplesAreCountedButExcluded) {
  LatencyRecorder recorder(/*warmup_samples=*/3);
  // Warm-up samples are deliberately huge: if any leaks into the stats,
  // every assertion below fails loudly.
  for (double ms : {500.0, 400.0, 300.0}) recorder.record(ms);
  for (double ms : {1.0, 2.0, 3.0, 4.0}) recorder.record(ms);

  const LatencySummary s = recorder.summary();
  EXPECT_EQ(s.total_samples, 7u);
  EXPECT_EQ(s.warmup_excluded, 3u);
  EXPECT_EQ(s.measured, 4u);
  EXPECT_DOUBLE_EQ(s.mean_ms, 2.5);
  EXPECT_DOUBLE_EQ(s.p50_ms, 2.0);  // floor(0.5 * 3) = index 1
  EXPECT_DOUBLE_EQ(s.max_ms, 4.0);
}

TEST(LatencyRecorder, ShortRunExcludesEverything) {
  LatencyRecorder recorder(/*warmup_samples=*/10);
  recorder.record(1.0);
  recorder.record(2.0);
  const LatencySummary s = recorder.summary();
  EXPECT_EQ(s.total_samples, 2u);
  EXPECT_EQ(s.warmup_excluded, 2u);
  EXPECT_EQ(s.measured, 0u);
  EXPECT_DOUBLE_EQ(s.p99_ms, 0.0);
}

TEST(LatencyRecorder, ZeroWarmupKeepsEverything) {
  LatencyRecorder recorder;
  for (int i = 1; i <= 100; ++i) recorder.record(static_cast<double>(i));
  const LatencySummary s = recorder.summary();
  EXPECT_EQ(s.measured, 100u);
  EXPECT_EQ(s.warmup_excluded, 0u);
  EXPECT_DOUBLE_EQ(s.p50_ms, 50.0);   // floor(0.5 * 99) = index 49
  EXPECT_DOUBLE_EQ(s.p99_ms, 99.0);   // floor(0.99 * 99) = index 98
  EXPECT_DOUBLE_EQ(s.p999_ms, 99.0);  // floor(0.999 * 99) = index 98
  EXPECT_DOUBLE_EQ(s.max_ms, 100.0);
}

TEST(LatencyRecorder, PercentileRuleIsNearestRankOnSortedInput) {
  const std::vector<double> sorted = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(LatencyRecorder::percentile(sorted, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(LatencyRecorder::percentile(sorted, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(LatencyRecorder::percentile(sorted, 0.99), 4.0);
  EXPECT_DOUBLE_EQ(LatencyRecorder::percentile(sorted, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(LatencyRecorder::percentile({}, 0.5), 0.0);
}

// Multi-client merge: warm-up is per client (each client's first requests
// are its own cold start), and the merged accounting must add up exactly.
TEST(LatencyRecorder, MergePreservesPerClientWarmupAccounting) {
  LatencyRecorder a(/*warmup_samples=*/2);
  LatencyRecorder b(/*warmup_samples=*/2);
  for (double ms : {900.0, 900.0, 10.0, 20.0}) a.record(ms);
  for (double ms : {900.0, 900.0, 30.0}) b.record(ms);

  std::vector<double> merged;
  LatencySummary accounting;
  a.merge_into(merged, accounting);
  b.merge_into(merged, accounting);
  const LatencySummary s = LatencyRecorder::summarize(std::move(merged),
                                                      accounting);
  EXPECT_EQ(s.total_samples, 7u);
  EXPECT_EQ(s.warmup_excluded, 4u);
  EXPECT_EQ(s.measured, 3u);
  EXPECT_DOUBLE_EQ(s.mean_ms, 20.0);
  EXPECT_DOUBLE_EQ(s.max_ms, 30.0);
}

// Merged-then-summarized must equal a single recorder fed the same
// measured stream: one accounting rule across harness modes.
TEST(LatencyRecorder, MergeMatchesSingleRecorder) {
  LatencyRecorder single(/*warmup_samples=*/0);
  LatencyRecorder left(/*warmup_samples=*/1);
  LatencyRecorder right(/*warmup_samples=*/1);
  left.record(777.0);   // warm-up
  right.record(777.0);  // warm-up
  for (int i = 0; i < 50; ++i) {
    const double ms = 1.0 + 0.25 * static_cast<double>(i % 20);
    single.record(ms);
    (i % 2 == 0 ? left : right).record(ms);
  }
  std::vector<double> merged;
  LatencySummary accounting;
  left.merge_into(merged, accounting);
  right.merge_into(merged, accounting);
  const LatencySummary m = LatencyRecorder::summarize(std::move(merged),
                                                      accounting);
  const LatencySummary s = single.summary();
  EXPECT_DOUBLE_EQ(m.p50_ms, s.p50_ms);
  EXPECT_DOUBLE_EQ(m.p99_ms, s.p99_ms);
  EXPECT_DOUBLE_EQ(m.mean_ms, s.mean_ms);
  EXPECT_EQ(m.measured, s.measured);
}

TEST(LatencyRecorder, FractionWithinSlo) {
  LatencyRecorder recorder(/*warmup_samples=*/1);
  recorder.record(999.0);  // warm-up; would poison the fraction if counted
  for (double ms : {1.0, 2.0, 3.0, 4.0}) recorder.record(ms);
  EXPECT_DOUBLE_EQ(recorder.fraction_within(2.0), 0.5);
  EXPECT_DOUBLE_EQ(recorder.fraction_within(0.5), 0.0);
  EXPECT_DOUBLE_EQ(recorder.fraction_within(10.0), 1.0);
  LatencyRecorder empty;
  EXPECT_DOUBLE_EQ(empty.fraction_within(1.0), 0.0);
}

}  // namespace
}  // namespace disthd::util
