#include <gtest/gtest.h>

#include <cmath>

#include "util/matrix.hpp"
#include "util/rng.hpp"

namespace disthd::util {
namespace {

TEST(Matrix, ConstructionAndIndexing) {
  Matrix m(2, 3, 1.5f);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  EXPECT_FLOAT_EQ(m(1, 2), 1.5f);
  m(0, 1) = -2.0f;
  EXPECT_FLOAT_EQ(m(0, 1), -2.0f);
}

TEST(Matrix, RowSpanAliasesStorage) {
  Matrix m(3, 4);
  auto row = m.row(1);
  row[2] = 9.0f;
  EXPECT_FLOAT_EQ(m(1, 2), 9.0f);
  EXPECT_EQ(row.size(), 4u);
}

TEST(Matrix, ReshapeZeroes) {
  Matrix m(2, 2, 5.0f);
  m.reshape(3, 1);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 1u);
  for (std::size_t r = 0; r < 3; ++r) EXPECT_FLOAT_EQ(m(r, 0), 0.0f);
}

TEST(Matrix, ReshapeUninitializedSetsShapeWithoutClearing) {
  Matrix m(2, 2, 5.0f);
  m.reshape_uninitialized(4, 3);
  EXPECT_EQ(m.rows(), 4u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 12u);
  // Contents are unspecified; the contract is only that every element is
  // writable and the shape is right.
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 3; ++c) m(r, c) = 1.0f;
  }
  m.reshape_uninitialized(2, 2);
  EXPECT_EQ(m.size(), 4u);
  m.reshape_uninitialized(0, 7);
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(Matrix, GatherRows) {
  Matrix m(3, 2);
  for (std::size_t r = 0; r < 3; ++r) {
    m(r, 0) = static_cast<float>(r);
    m(r, 1) = static_cast<float>(10 * r);
  }
  const std::size_t idx[] = {2, 0};
  const Matrix g = m.gather_rows(idx);
  EXPECT_EQ(g.rows(), 2u);
  EXPECT_FLOAT_EQ(g(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(g(0, 1), 20.0f);
  EXPECT_FLOAT_EQ(g(1, 0), 0.0f);
}

TEST(VectorKernels, DotHandComputed) {
  const float a[] = {1.0f, 2.0f, 3.0f};
  const float b[] = {4.0f, -5.0f, 6.0f};
  EXPECT_DOUBLE_EQ(dot(a, b), 4.0 - 10.0 + 18.0);
}

TEST(VectorKernels, DotEmptyIsZero) {
  EXPECT_DOUBLE_EQ(dot(std::span<const float>{}, std::span<const float>{}), 0.0);
}

TEST(VectorKernels, DotUnrolledTailCorrect) {
  // Length 7 exercises both the 4-wide lanes and the scalar tail.
  const float a[] = {1, 1, 1, 1, 1, 1, 1};
  const float b[] = {1, 2, 3, 4, 5, 6, 7};
  EXPECT_DOUBLE_EQ(dot(a, b), 28.0);
}

TEST(VectorKernels, Norm2) {
  const float a[] = {3.0f, 4.0f};
  EXPECT_DOUBLE_EQ(norm2(a), 5.0);
}

TEST(VectorKernels, CosineOfParallelVectorsIsOne) {
  const float a[] = {1.0f, 2.0f, 2.0f};
  const float b[] = {2.0f, 4.0f, 4.0f};
  EXPECT_NEAR(cosine(a, b), 1.0, 1e-12);
}

TEST(VectorKernels, CosineOfOrthogonalVectorsIsZero) {
  const float a[] = {1.0f, 0.0f};
  const float b[] = {0.0f, 1.0f};
  EXPECT_DOUBLE_EQ(cosine(a, b), 0.0);
}

TEST(VectorKernels, CosineZeroVectorIsZero) {
  const float a[] = {0.0f, 0.0f};
  const float b[] = {1.0f, 1.0f};
  EXPECT_DOUBLE_EQ(cosine(a, b), 0.0);
}

TEST(VectorKernels, AxpyAndScale) {
  const float x[] = {1.0f, 2.0f};
  float y[] = {10.0f, 20.0f};
  axpy(2.0f, x, y);
  EXPECT_FLOAT_EQ(y[0], 12.0f);
  EXPECT_FLOAT_EQ(y[1], 24.0f);
  scale(y, 0.5f);
  EXPECT_FLOAT_EQ(y[0], 6.0f);
  EXPECT_FLOAT_EQ(y[1], 12.0f);
}

TEST(MatrixKernels, MatmulNtHandComputed) {
  Matrix a(2, 3);
  Matrix b(2, 3);
  // a = [[1,2,3],[4,5,6]]; b = [[1,0,1],[0,1,0]]
  float av[] = {1, 2, 3, 4, 5, 6};
  float bv[] = {1, 0, 1, 0, 1, 0};
  std::copy(av, av + 6, a.data());
  std::copy(bv, bv + 6, b.data());
  Matrix out;
  matmul_nt(a, b, out);
  ASSERT_EQ(out.rows(), 2u);
  ASSERT_EQ(out.cols(), 2u);
  EXPECT_FLOAT_EQ(out(0, 0), 4.0f);   // 1+3
  EXPECT_FLOAT_EQ(out(0, 1), 2.0f);   // 2
  EXPECT_FLOAT_EQ(out(1, 0), 10.0f);  // 4+6
  EXPECT_FLOAT_EQ(out(1, 1), 5.0f);   // 5
}

TEST(MatrixKernels, MatmulNtShapeMismatchThrows) {
  Matrix a(2, 3), b(2, 4), out;
  EXPECT_THROW(matmul_nt(a, b, out), std::invalid_argument);
}

TEST(MatrixKernels, MatmulNnMatchesNtWithTranspose) {
  Rng rng(5);
  Matrix a(7, 5), b(5, 6);
  a.fill_normal(rng);
  b.fill_normal(rng);
  Matrix nn_out, nt_out;
  matmul_nn(a, b, nn_out);
  matmul_nt(a, transpose(b), nt_out);
  ASSERT_EQ(nn_out.rows(), nt_out.rows());
  ASSERT_EQ(nn_out.cols(), nt_out.cols());
  for (std::size_t i = 0; i < nn_out.size(); ++i) {
    EXPECT_NEAR(nn_out.data()[i], nt_out.data()[i], 1e-4);
  }
}

TEST(MatrixKernels, MatmulTnMatchesManualTranspose) {
  Rng rng(9);
  Matrix a(6, 3), b(6, 4);
  a.fill_normal(rng);
  b.fill_normal(rng);
  Matrix tn_out, ref;
  matmul_tn(a, b, tn_out);
  matmul_nn(transpose(a), b, ref);
  ASSERT_EQ(tn_out.rows(), 3u);
  ASSERT_EQ(tn_out.cols(), 4u);
  for (std::size_t i = 0; i < tn_out.size(); ++i) {
    EXPECT_NEAR(tn_out.data()[i], ref.data()[i], 1e-4);
  }
}

TEST(MatrixKernels, MatvecMatchesMatmul) {
  Rng rng(11);
  Matrix a(5, 4);
  a.fill_normal(rng);
  std::vector<float> x = {1.0f, -1.0f, 0.5f, 2.0f};
  const auto y = matvec(a, x);
  ASSERT_EQ(y.size(), 5u);
  for (std::size_t r = 0; r < 5; ++r) {
    EXPECT_NEAR(y[r], static_cast<float>(dot(a.row(r), x)), 1e-5);
  }
}

TEST(MatrixKernels, ColSums) {
  Matrix m(2, 3);
  float values[] = {1, 2, 3, 4, 5, 6};
  std::copy(values, values + 6, m.data());
  std::vector<double> sums;
  col_sums(m, sums);
  ASSERT_EQ(sums.size(), 3u);
  EXPECT_DOUBLE_EQ(sums[0], 5.0);
  EXPECT_DOUBLE_EQ(sums[1], 7.0);
  EXPECT_DOUBLE_EQ(sums[2], 9.0);
}

TEST(MatrixKernels, NormalizeRowsMakesUnitNorm) {
  Rng rng(13);
  Matrix m(4, 10);
  m.fill_normal(rng);
  normalize_rows(m);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    EXPECT_NEAR(norm2(m.row(r)), 1.0, 1e-5);
  }
}

TEST(MatrixKernels, NormalizeRowsLeavesZeroRows) {
  Matrix m(2, 3, 0.0f);
  m(0, 0) = 2.0f;
  normalize_rows(m);
  EXPECT_NEAR(norm2(m.row(0)), 1.0, 1e-6);
  EXPECT_DOUBLE_EQ(norm2(m.row(1)), 0.0);
}

TEST(MatrixKernels, TransposeRoundTrip) {
  Rng rng(17);
  Matrix m(3, 5);
  m.fill_normal(rng);
  const Matrix round_trip = transpose(transpose(m));
  EXPECT_EQ(round_trip, m);
}

TEST(VectorKernels, DotsRowsBitIdenticalToPerRowDot) {
  Rng rng(91);
  Matrix m(11, 135);  // odd row count and k straddling the 8-lane unroll
  m.fill_normal(rng);
  std::vector<float> v(135);
  for (auto& x : v) x = static_cast<float>(rng.normal());
  std::vector<double> out(m.rows());
  dots_rows(m, v, out);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    EXPECT_EQ(out[r], dot(m.row(r), v)) << "row " << r;
  }
}

TEST(MatrixKernels, RowDotsNtMatchesMatmulColumns) {
  // row_dots_nt is the exposed micro-kernel of matmul_nt; a sub-range call
  // must produce exactly the bytes the full GEMM writes for those columns.
  Rng rng(93);
  for (const std::size_t k : {1u, 7u, 8u, 9u, 64u, 67u}) {
    Matrix a(3, k), b(21, k);
    a.fill_normal(rng);
    b.fill_normal(rng);
    Matrix full;
    matmul_nt(a, b, full);
    std::vector<float> out(5);
    row_dots_nt(a.row(1), b, /*col_begin=*/13, out);
    for (std::size_t j = 0; j < out.size(); ++j) {
      EXPECT_EQ(out[j], full(1, 13 + j)) << "k=" << k << " j=" << j;
    }
  }
}

TEST(MatrixKernels, MatmulNtEmptyShapes) {
  // Degenerate shapes must produce well-formed (possibly empty) outputs.
  Matrix a(0, 5), b(3, 5), out;
  matmul_nt(a, b, out);
  EXPECT_EQ(out.rows(), 0u);
  EXPECT_EQ(out.cols(), 3u);

  Matrix a2(4, 5), b2(0, 5);
  matmul_nt(a2, b2, out);
  EXPECT_EQ(out.rows(), 4u);
  EXPECT_EQ(out.cols(), 0u);
  EXPECT_TRUE(out.empty());

  // k == 0: every dot is an empty sum.
  Matrix a3(2, 0), b3(3, 0);
  matmul_nt(a3, b3, out);
  ASSERT_EQ(out.rows(), 2u);
  ASSERT_EQ(out.cols(), 3u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_FLOAT_EQ(out.data()[i], 0.0f);
  }
}

// Property sweep: matmul_nt against a naive reference across shapes.
class MatmulProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatmulProperty, MatchesNaiveReference) {
  const auto [m, n, k] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 10007 + n * 101 + k));
  Matrix a(m, k), b(n, k);
  a.fill_normal(rng);
  b.fill_normal(rng);
  Matrix out;
  matmul_nt(a, b, out);
  for (std::size_t r = 0; r < out.rows(); ++r) {
    for (std::size_t c = 0; c < out.cols(); ++c) {
      double ref = 0.0;
      for (std::size_t i = 0; i < a.cols(); ++i) {
        ref += static_cast<double>(a(r, i)) * b(c, i);
      }
      EXPECT_NEAR(out(r, c), ref, 1e-3) << "at (" << r << "," << c << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, MatmulProperty,
                         ::testing::Values(std::tuple{1, 1, 1},
                                           std::tuple{3, 2, 7},
                                           std::tuple{8, 8, 8},
                                           std::tuple{17, 5, 33},
                                           std::tuple{64, 3, 129},
                                           // k straddling the 8-lane unroll
                                           std::tuple{5, 9, 15},
                                           std::tuple{2, 300, 17},  // n > tile
                                           std::tuple{9, 257, 8}));

}  // namespace
}  // namespace disthd::util
