#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "util/rng.hpp"

namespace disthd::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += (a.next_u64() == b.next_u64());
  }
  EXPECT_LE(equal, 1);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanNearOneHalf) {
  Rng rng(11);
  double sum = 0.0;
  constexpr int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, UniformIndexOfOneIsZero) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_index(1), 0u);
}

TEST(Rng, NormalMomentsMatchStandard) {
  Rng rng(13);
  double sum = 0.0, sq = 0.0;
  constexpr int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.02);
}

TEST(Rng, NormalWithParametersShiftsAndScales) {
  Rng rng(17);
  double sum = 0.0;
  constexpr int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(19);
  int hits = 0;
  constexpr int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(23);
  Rng a = parent.split(1);
  Rng b = parent.split(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.next_u64() == b.next_u64());
  EXPECT_LE(equal, 1);
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(29);
  const auto perm = rng.permutation(100);
  std::set<std::size_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(Rng, PermutationShuffles) {
  Rng rng(31);
  const auto perm = rng.permutation(1000);
  std::size_t fixed_points = 0;
  for (std::size_t i = 0; i < perm.size(); ++i) fixed_points += (perm[i] == i);
  // Expected number of fixed points of a random permutation is 1.
  EXPECT_LT(fixed_points, 10u);
}

TEST(Rng, ShuffleKeepsMultiset) {
  Rng rng(37);
  std::vector<int> values = {1, 2, 2, 3, 3, 3};
  auto shuffled = values;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(SplitMix64, KnownFirstOutput) {
  // Reference value from the SplitMix64 reference implementation.
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xe220a8397b1dcdafULL);
}

}  // namespace
}  // namespace disthd::util
