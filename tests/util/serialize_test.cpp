#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <limits>
#include <sstream>

#include "util/rng.hpp"
#include "util/serialize.hpp"

namespace disthd::util {
namespace {

TEST(Serialize, PrimitivesRoundTrip) {
  std::stringstream buffer;
  BinaryWriter writer(buffer);
  writer.write_u32(0xDEADBEEFu);
  writer.write_u64(0x123456789ABCDEF0ULL);
  writer.write_f32(3.25f);
  writer.write_f64(-1e100);

  BinaryReader reader(buffer);
  EXPECT_EQ(reader.read_u32(), 0xDEADBEEFu);
  EXPECT_EQ(reader.read_u64(), 0x123456789ABCDEF0ULL);
  EXPECT_FLOAT_EQ(reader.read_f32(), 3.25f);
  EXPECT_DOUBLE_EQ(reader.read_f64(), -1e100);
}

TEST(Serialize, StringRoundTrip) {
  std::stringstream buffer;
  BinaryWriter writer(buffer);
  writer.write_string("hello world");
  writer.write_string("");
  BinaryReader reader(buffer);
  EXPECT_EQ(reader.read_string(), "hello world");
  EXPECT_EQ(reader.read_string(), "");
}

TEST(Serialize, F32ArrayRoundTrip) {
  std::stringstream buffer;
  BinaryWriter writer(buffer);
  const std::vector<float> values = {1.0f, -2.5f, 0.0f, 1e-20f};
  writer.write_f32_array(values);
  BinaryReader reader(buffer);
  EXPECT_EQ(reader.read_f32_array(), values);
}

TEST(Serialize, EmptyArrayRoundTrip) {
  std::stringstream buffer;
  BinaryWriter writer(buffer);
  writer.write_f32_array(std::vector<float>{});
  BinaryReader reader(buffer);
  EXPECT_TRUE(reader.read_f32_array().empty());
}

TEST(Serialize, MatrixRoundTrip) {
  Rng rng(3);
  Matrix m(7, 11);
  m.fill_normal(rng);
  std::stringstream buffer;
  BinaryWriter writer(buffer);
  writer.write_matrix(m);
  BinaryReader reader(buffer);
  const Matrix loaded = reader.read_matrix();
  EXPECT_EQ(loaded, m);
}

TEST(Serialize, MagicTagAcceptsMatch) {
  std::stringstream buffer;
  BinaryWriter writer(buffer);
  writer.write_magic("ABCD");
  BinaryReader reader(buffer);
  EXPECT_NO_THROW(reader.expect_magic("ABCD"));
}

TEST(Serialize, MagicTagRejectsMismatch) {
  std::stringstream buffer;
  BinaryWriter writer(buffer);
  writer.write_magic("ABCD");
  BinaryReader reader(buffer);
  EXPECT_THROW(reader.expect_magic("WXYZ"), std::runtime_error);
}

TEST(Serialize, TruncatedInputThrows) {
  std::stringstream buffer;
  BinaryWriter writer(buffer);
  writer.write_u32(1);
  BinaryReader reader(buffer);
  reader.read_u32();
  EXPECT_THROW(reader.read_u64(), std::runtime_error);
}

TEST(Serialize, TruncatedArrayThrows) {
  std::stringstream buffer;
  BinaryWriter writer(buffer);
  writer.write_u64(1000);  // claims 1000 floats, provides none
  BinaryReader reader(buffer);
  EXPECT_THROW(reader.read_f32_array(), std::runtime_error);
}

TEST(Serialize, AbsurdStringLengthRejected) {
  std::stringstream buffer;
  BinaryWriter writer(buffer);
  writer.write_u64(1ULL << 40);
  BinaryReader reader(buffer);
  EXPECT_THROW(reader.read_string(), std::runtime_error);
}

TEST(Serialize, NonFiniteAndDenormalFloatsRoundTripBitExact) {
  // Model persistence must not corrupt unusual float values (centering
  // offsets can be denormal; a corrupted model could carry infinities).
  const std::vector<float> values = {
      std::numeric_limits<float>::infinity(),
      -std::numeric_limits<float>::infinity(),
      std::numeric_limits<float>::quiet_NaN(),
      std::numeric_limits<float>::denorm_min(),
      -0.0f,
  };
  std::stringstream buffer;
  BinaryWriter writer(buffer);
  writer.write_f32_array(values);
  BinaryReader reader(buffer);
  const auto loaded = reader.read_f32_array();
  ASSERT_EQ(loaded.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint32_t>(loaded[i]),
              std::bit_cast<std::uint32_t>(values[i]))
        << "index " << i;
  }
}

TEST(Serialize, InterleavedSequenceRoundTrip) {
  std::stringstream buffer;
  BinaryWriter writer(buffer);
  writer.write_magic("SEQ1");
  writer.write_string("model");
  writer.write_u64(42);
  Matrix m(2, 2, 1.0f);
  writer.write_matrix(m);
  writer.write_f64(2.5);

  BinaryReader reader(buffer);
  reader.expect_magic("SEQ1");
  EXPECT_EQ(reader.read_string(), "model");
  EXPECT_EQ(reader.read_u64(), 42u);
  EXPECT_EQ(reader.read_matrix(), m);
  EXPECT_DOUBLE_EQ(reader.read_f64(), 2.5);
}

}  // namespace
}  // namespace disthd::util
