#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/thread_pool.hpp"

namespace disthd::util {
namespace {

TEST(ThreadPool, SizeDefaultsToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, CoversFullRangeExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(
      n,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          hits[i].fetch_add(1, std::memory_order_relaxed);
        }
      },
      /*min_chunk=*/16);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ZeroCountIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, SmallRangeRunsInline) {
  ThreadPool pool(4);
  std::size_t calls = 0;  // safe without atomics when run inline
  pool.parallel_for(
      10, [&](std::size_t begin, std::size_t end) { calls += end - begin; },
      /*min_chunk=*/256);
  EXPECT_EQ(calls, 10u);
}

TEST(ThreadPool, ParallelSumMatchesSerial) {
  ThreadPool pool(8);
  constexpr std::size_t n = 100000;
  std::vector<double> values(n);
  std::iota(values.begin(), values.end(), 0.0);
  std::atomic<long long> parallel_sum{0};
  pool.parallel_for(
      n,
      [&](std::size_t begin, std::size_t end) {
        long long local = 0;
        for (std::size_t i = begin; i < end; ++i) {
          local += static_cast<long long>(values[i]);
        }
        parallel_sum.fetch_add(local, std::memory_order_relaxed);
      },
      /*min_chunk=*/64);
  EXPECT_EQ(parallel_sum.load(),
            static_cast<long long>(n) * (n - 1) / 2);
}

TEST(ThreadPool, PropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(
          10000,
          [](std::size_t begin, std::size_t) {
            if (begin == 0) throw std::runtime_error("boom");
          },
          /*min_chunk=*/16),
      std::runtime_error);
}

TEST(ThreadPool, ReusableAfterException) {
  ThreadPool pool(2);
  try {
    pool.parallel_for(
        1000, [](std::size_t, std::size_t) { throw std::runtime_error("x"); },
        /*min_chunk=*/16);
  } catch (const std::runtime_error&) {
  }
  std::atomic<std::size_t> count{0};
  pool.parallel_for(
      1000,
      [&](std::size_t begin, std::size_t end) {
        count.fetch_add(end - begin, std::memory_order_relaxed);
      },
      /*min_chunk=*/16);
  EXPECT_EQ(count.load(), 1000u);
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  ThreadPool& a = global_pool();
  ThreadPool& b = global_pool();
  EXPECT_EQ(&a, &b);
}

TEST(ThreadPool, SingleElementRange) {
  ThreadPool pool(4);
  std::size_t calls = 0;
  std::size_t seen_begin = 99, seen_end = 99;
  pool.parallel_for(
      1,
      [&](std::size_t begin, std::size_t end) {
        ++calls;
        seen_begin = begin;
        seen_end = end;
      },
      /*min_chunk=*/1);
  EXPECT_EQ(calls, 1u);
  EXPECT_EQ(seen_begin, 0u);
  EXPECT_EQ(seen_end, 1u);
}

TEST(ThreadPool, NestedParallelForOnSamePoolDoesNotDeadlock) {
  // Every worker (and the caller) re-enters parallel_for on the SAME pool.
  // The caller of a parallel_for always claims chunks itself, so the inner
  // calls complete even with every worker occupied by an outer chunk.
  ThreadPool pool(2);
  std::atomic<std::size_t> total{0};
  pool.parallel_for(
      8,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          pool.parallel_for(
              64,
              [&](std::size_t b, std::size_t e) {
                total.fetch_add(e - b, std::memory_order_relaxed);
              },
              /*min_chunk=*/4);
        }
      },
      /*min_chunk=*/1);
  EXPECT_EQ(total.load(), 8u * 64u);
}

TEST(ThreadPool, NestedExceptionPropagatesThroughBothLevels) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(
          4,
          [&](std::size_t begin, std::size_t) {
            pool.parallel_for(
                64,
                [&](std::size_t b, std::size_t) {
                  if (b == 0 && begin == 0) throw std::runtime_error("inner");
                },
                /*min_chunk=*/4);
          },
          /*min_chunk=*/1),
      std::runtime_error);
}

TEST(ThreadPool, SubmitReturnsValueThroughFuture) {
  ThreadPool pool(2);
  auto future = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
  auto void_future = pool.submit([] {});
  void_future.get();  // completes without throwing
}

TEST(ThreadPool, SubmitPropagatesExceptionThroughFuture) {
  ThreadPool pool(2);
  auto future = pool.submit([]() -> int { throw std::runtime_error("task"); });
  EXPECT_THROW(future.get(), std::runtime_error);
  // The pool survives a throwing task.
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPool, GracefulShutdownDrainsQueuedTasks) {
  std::atomic<int> completed{0};
  std::future<void> slow;
  std::vector<std::future<int>> queued;
  {
    ThreadPool pool(1);
    // One slow task occupies the single worker while more tasks queue up
    // behind it; destroying the pool must run them all, not drop them.
    slow = pool.submit([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      completed.fetch_add(1);
    });
    for (int i = 0; i < 8; ++i) {
      queued.push_back(pool.submit([&, i] {
        completed.fetch_add(1);
        return i;
      }));
    }
  }  // ~ThreadPool: graceful drain
  EXPECT_EQ(completed.load(), 9);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(queued[static_cast<std::size_t>(i)].get(), i);
}

TEST(ThreadPool, NestedSubmissionFromWorkerDoesNotDeadlock) {
  // A worker task calling back into the free-function parallel_for (the
  // global pool) must complete; the global pool differs from this pool so
  // no self-wait cycle exists.
  ThreadPool pool(2);
  std::atomic<std::size_t> total{0};
  pool.parallel_for(
      4,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          parallel_for(100, [&](std::size_t b, std::size_t e) {
            total.fetch_add(e - b, std::memory_order_relaxed);
          });
        }
      },
      /*min_chunk=*/1);
  EXPECT_EQ(total.load(), 400u);
}

}  // namespace
}  // namespace disthd::util
