#!/usr/bin/env python3
"""Check that intra-repo markdown references resolve to real files.

Two classes of reference are validated across every tracked *.md file:

1. Inline markdown links ``[text](target)`` whose target is a relative
   path (external ``http(s)://``/``mailto:`` links and pure ``#anchor``
   fragments are skipped). The target is resolved against the linking
   file's directory; a ``#fragment`` suffix is stripped first.

2. Backtick-quoted repo paths like ``src/serve/engine_pool.hpp`` — any
   `...` token that contains a ``/`` and starts with a known top-level
   source directory. Brace groups expand (``fit_session.{hpp,cpp}`` checks
   both members); tokens containing glob characters are skipped.

Exit status 0 when everything resolves, 1 with one line per stale
reference otherwise — wired into CI as the `docs` job and into CTest as
`docs.links`, so documentation cannot rot silently as the tree moves.
"""

from __future__ import annotations

import itertools
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# Directories whose markdown is checked; build trees and third-party
# checkouts are not ours to police.
SKIP_DIR_PREFIXES = ("build", ".git", ".claude")

# A backticked token must start with one of these to be treated as a repo
# path claim (so `a/b` ratios or URL fragments in prose are ignored).
PATH_ROOTS = (
    "src/",
    "docs/",
    "tools/",
    "tests/",
    "bench/",
    "examples/",
    ".github/",
)

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
CODE_RE = re.compile(r"`([^`\n]+)`")
TOKEN_RE = re.compile(r"^[A-Za-z0-9_.{},/\-]+$")


def markdown_files() -> list[Path]:
    files = []
    for path in sorted(REPO_ROOT.rglob("*.md")):
        relative = path.relative_to(REPO_ROOT)
        if relative.parts[0].startswith(SKIP_DIR_PREFIXES):
            continue
        files.append(path)
    return files


def expand_braces(token: str) -> list[str]:
    """`a.{hpp,cpp}` -> [`a.hpp`, `a.cpp`]; nested braces unsupported."""
    match = re.search(r"\{([^{}]*)\}", token)
    if not match:
        return [token]
    head, tail = token[: match.start()], token[match.end() :]
    expanded = []
    for option in match.group(1).split(","):
        expanded.extend(expand_braces(head + option + tail))
    return expanded


def check_file(path: Path) -> list[str]:
    errors = []
    text = path.read_text(encoding="utf-8")
    relative = path.relative_to(REPO_ROOT)

    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            errors.append(f"{relative}: broken link -> {target}")

    for match in CODE_RE.finditer(text):
        token = match.group(1)
        if "/" not in token or not token.startswith(PATH_ROOTS):
            continue
        if not TOKEN_RE.match(token) or "*" in token:
            continue  # command lines, globs, placeholders
        for candidate in expand_braces(token):
            if not (REPO_ROOT / candidate).exists():
                errors.append(f"{relative}: stale file reference -> {candidate}")

    return errors


def main() -> int:
    files = markdown_files()
    errors = list(itertools.chain.from_iterable(check_file(f) for f in files))
    for error in errors:
        print(error, file=sys.stderr)
    print(
        f"checked {len(files)} markdown files: "
        + (f"{len(errors)} stale reference(s)" if errors else "all clean")
    )
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
