# CTest script: replay mode must finish the training stream before
# --save-bundle (tail-drain satellite). Chunked replay ingests one chunk
# per --train-every queries; a query stream that ends early leaves
# un-ingested training rows behind, and the saved bundle must still be
# the FULL-stream fit — the serve loop drains the tail before saving.
#
# Two runs over the same stream with the same chunking:
#   short: 1 query  -> most of the stream is tail, drained at save time
#   long:  enough queries that every chunk ingests during serving
# The two saved bundles must be byte-identical; before the drain fix the
# short run saved a model trained on one chunk out of three.
#
#   cmake -DSERVE=<disthd_serve> -DTRAIN=<train.csv> -DQUERY=<query.csv>
#         -DWORK_DIR=<dir> -P check_replay_drain.cmake

foreach(var SERVE TRAIN QUERY WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "missing -D${var}=...")
  endif()
endforeach()

# A one-query stream cut from the committed fixture (plus its header).
file(STRINGS ${QUERY} query_lines)
list(GET query_lines 0 header)
list(GET query_lines 1 lone_row)
set(short_query ${WORK_DIR}/replay_drain_short_query.csv)
file(WRITE ${short_query} "${header}\n${lone_row}\n")

set(short_bundle ${WORK_DIR}/replay_drain_short.bin)
set(full_bundle ${WORK_DIR}/replay_drain_full.bin)

foreach(run "short;${short_query};${short_bundle}" "full;${QUERY};${full_bundle}")
  list(GET run 0 tag)
  list(GET run 1 query_file)
  list(GET run 2 bundle)
  execute_process(
    COMMAND ${SERVE} --train-stream ${TRAIN} --input ${query_file}
            --train-chunk 40 --train-every 2 --dim 128 --seed 3
            --save-bundle ${bundle}
    OUTPUT_QUIET RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "replay (${tag} query stream) failed (${rc})")
  endif()
endforeach()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${short_bundle} ${full_bundle}
  RESULT_VARIABLE same)
if(NOT same EQUAL 0)
  message(FATAL_ERROR "bundle saved after a short query stream differs from "
                      "the full-stream fit: the un-ingested training tail "
                      "was dropped before --save-bundle")
endif()
message(STATUS "replay tail-drain OK: short-stream and full-stream bundles are byte-identical")
