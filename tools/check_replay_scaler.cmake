# CTest script: the ModelBundle/snapshot scaler gap, end-to-end (ISSUE 4
# satellite). disthd_serve replay mode fits a min-max scaler on its first
# training chunk, folds it into every published snapshot (so queries are
# scaled exactly like the training stream), and --save-bundle writes the
# final snapshot back out as a bundle. If any link drops the scaler —
# training on raw rows, serving queries unscaled, or saving a bundle
# without the statistics — the label sequences diverge on a
# wildly-scaled fixture.
#
#   cmake -DSERVE=<disthd_serve> -DPREDICT=<disthd_predict>
#         -DTRAIN=<scaled_train.csv> -DQUERY=<scaled_query.csv>
#         -DWORK_DIR=<dir> -P check_replay_scaler.cmake
#
# The replay ingests the whole stream as one chunk before serving (chunk
# size >= the fixture), so the saved bundle is exactly the model every
# query was answered with and disthd_predict must reproduce every label.

foreach(var SERVE PREDICT TRAIN QUERY WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "missing -D${var}=...")
  endif()
endforeach()

set(bundle ${WORK_DIR}/replay_scaler_bundle.bin)

execute_process(
  COMMAND ${SERVE} --train-stream ${TRAIN} --input ${QUERY}
          --train-chunk 100000 --train-every 0
          --dim 128 --seed 3 --max-batch 4 --save-bundle ${bundle}
  OUTPUT_VARIABLE serve_out RESULT_VARIABLE serve_rc)
if(NOT serve_rc EQUAL 0)
  message(FATAL_ERROR "disthd_serve replay failed (${serve_rc})")
endif()

execute_process(
  COMMAND ${PREDICT} --model ${bundle} --input ${QUERY}
  OUTPUT_VARIABLE predict_out RESULT_VARIABLE predict_rc)
if(NOT predict_rc EQUAL 0)
  message(FATAL_ERROR "disthd_predict on the saved replay bundle failed (${predict_rc})")
endif()

include(${CMAKE_CURRENT_LIST_DIR}/parity_common.cmake)

extract_labels("${serve_out}" 1 0 serve_labels)
extract_labels("${predict_out}" 1 1 predict_labels)

if(NOT serve_labels STREQUAL predict_labels)
  message(FATAL_ERROR "replay-scaler label mismatch:\n  serve:   ${serve_labels}\n  predict: ${predict_labels}")
endif()
list(LENGTH serve_labels n)
if(n EQUAL 0)
  message(FATAL_ERROR "no labels extracted — output format changed?")
endif()
message(STATUS "replay scaler round-trip parity OK over ${n} queries")
