# CTest script: serving survives malformed traffic (crash-proofing
# satellite). A query stream with garbage spliced into the middle —
# an unparseable directive, a feature cell with trailing garbage, and a
# request naming an unregistered model — must leave disthd_serve running:
# exit 0, every good row answered, and each bad line answered by exactly
# one "#error" line IN ITS REQUEST POSITION (nothing shifts, nothing is
# dropped, nothing doubles).
#
#   cmake -DSERVE=<disthd_serve> -DMODEL=<bundle.bin> -DQUERY=<query.csv>
#         -DWORK_DIR=<dir> -P check_serve_errors.cmake

foreach(var SERVE MODEL QUERY WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "missing -D${var}=...")
  endif()
endforeach()

# One known-good feature row from the committed query fixture (line 0 is
# the CSV header disthd_serve skips).
file(STRINGS ${QUERY} query_lines)
list(GET query_lines 0 header)
list(GET query_lines 1 good_row)

set(input ${WORK_DIR}/serve_errors_input.csv)
file(WRITE ${input}
  "${header}\n"
  "${good_row}\n"                 # answers
  "topk=banana|${good_row}\n"     # parse rejection: bad directive value
  "1.5abc,2,3\n"                  # parse rejection: trailing garbage
  "model=ghost|${good_row}\n"     # submit rejection: unregistered model
  "${good_row}\n")                # still serving: same row, same answer

execute_process(
  COMMAND ${SERVE} --model ${MODEL} --input ${input} --max-batch 4
  OUTPUT_VARIABLE serve_out RESULT_VARIABLE serve_rc)
if(NOT serve_rc EQUAL 0)
  message(FATAL_ERROR "disthd_serve died on malformed input (${serve_rc})")
endif()

string(REPLACE "\n" ";" lines "${serve_out}")
set(errors "")
set(answers "")
foreach(line IN LISTS lines)
  if(line STREQUAL "")
    continue()
  elseif(line MATCHES "^#error ")
    list(APPEND errors "${line}")
  elseif(line MATCHES "^#")
    continue()                      # protocol header / stats comments
  else()
    list(APPEND answers "${line}")
  endif()
endforeach()

list(LENGTH errors n_errors)
if(NOT n_errors EQUAL 3)
  message(FATAL_ERROR "expected exactly 3 #error lines, got ${n_errors}:\n${serve_out}")
endif()
# Each rejection names its offending token — the answer a client can act on.
list(GET errors 0 first_error)
list(GET errors 1 second_error)
list(GET errors 2 third_error)
if(NOT first_error MATCHES "banana")
  message(FATAL_ERROR "error 1 does not name the bad directive: ${first_error}")
endif()
if(NOT second_error MATCHES "trailing garbage")
  message(FATAL_ERROR "error 2 does not name the garbage cell: ${second_error}")
endif()
if(NOT third_error MATCHES "ghost")
  message(FATAL_ERROR "error 3 does not name the unknown model: ${third_error}")
endif()

list(LENGTH answers n_answers)
if(NOT n_answers EQUAL 2)
  message(FATAL_ERROR "expected 2 real answers, got ${n_answers}:\n${serve_out}")
endif()
list(GET answers 0 before)
list(GET answers 1 after)
if(NOT before STREQUAL after)
  message(FATAL_ERROR "same row answered differently across the garbage:\n  before: ${before}\n  after:  ${after}")
endif()
message(STATUS "malformed-input stream OK: 2 answers, 3 positioned #error lines, exit 0")
