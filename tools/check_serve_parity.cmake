# CTest script: disthd_serve's replayed label column must match
# disthd_predict on the same model bundle and query CSV (ISSUE 3 satellite).
#
# Invoked as:
#   cmake -DSERVE=<disthd_serve> -DPREDICT=<disthd_predict>
#         -DMODEL=<bundle.bin> -DQUERY=<queries.csv> -P check_serve_parity.cmake
#
# disthd_predict prints "row,prediction"; disthd_serve prints
# "version,label,score". Extract the label sequences from both and compare.

foreach(var SERVE PREDICT MODEL QUERY)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "missing -D${var}=...")
  endif()
endforeach()

execute_process(
  COMMAND ${PREDICT} --model ${MODEL} --input ${QUERY}
  OUTPUT_VARIABLE predict_out RESULT_VARIABLE predict_rc)
if(NOT predict_rc EQUAL 0)
  message(FATAL_ERROR "disthd_predict failed (${predict_rc})")
endif()

execute_process(
  COMMAND ${SERVE} --model ${MODEL} --input ${QUERY} --max-batch 3
  OUTPUT_VARIABLE serve_out RESULT_VARIABLE serve_rc)
if(NOT serve_rc EQUAL 0)
  message(FATAL_ERROR "disthd_serve failed (${serve_rc})")
endif()

function(extract_labels text label_column skip_header out_var)
  string(REPLACE "\n" ";" lines "${text}")
  set(labels "")
  set(index 0)
  foreach(line IN LISTS lines)
    if(line STREQUAL "")
      continue()
    endif()
    math(EXPR row "${index}")
    math(EXPR index "${index} + 1")
    if(row LESS ${skip_header})
      continue()
    endif()
    string(REPLACE "," ";" fields "${line}")
    list(GET fields ${label_column} label)
    list(APPEND labels "${label}")
  endforeach()
  set(${out_var} "${labels}" PARENT_SCOPE)
endfunction()

extract_labels("${predict_out}" 1 1 predict_labels)
extract_labels("${serve_out}" 1 1 serve_labels)

if(NOT predict_labels STREQUAL serve_labels)
  message(FATAL_ERROR "label mismatch:\n  predict: ${predict_labels}\n  serve:   ${serve_labels}")
endif()
list(LENGTH serve_labels n)
if(n EQUAL 0)
  message(FATAL_ERROR "no labels extracted — output format changed?")
endif()
message(STATUS "serve/predict parity OK over ${n} queries")
