# CTest script: disthd_serve's label column must match disthd_predict on the
# same model bundle(s) and query CSV (ISSUE 3 satellite; multi-model in
# ISSUE 4).
#
# Single model (v1-shaped plain CSV queries):
#   cmake -DSERVE=<disthd_serve> -DPREDICT=<disthd_predict>
#         -DMODEL=<bundle.bin> -DQUERY=<queries.csv> -P check_serve_parity.cmake
#
# Two models through ONE serve process (v2 "model=" routed queries): also
# pass -DMODEL2=<bundle2.bin> -DWORK_DIR=<dir>. The script interleaves every
# query row as a "model=a|..." and a "model=b|..." request, drives one serve
# process with both bundles registered, de-interleaves the response stream,
# and diffs each model's label sequence against its own disthd_predict run.
#
# -DPOOL=<P> additionally serves through a model-affine EnginePool of P
# engines (consistent-hash routing must not change a single label) and
# appends a "stats" verb request, whose "#stats" comment lines must leave
# the label stream untouched (ISSUE 5).
#
# disthd_predict prints "row,prediction"; disthd_serve prints
# "version,label,score..." (field 1 is always the top-1 label, per the v2
# protocol). Extract the label sequences from both and compare.

foreach(var SERVE PREDICT MODEL QUERY)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "missing -D${var}=...")
  endif()
endforeach()

include(${CMAKE_CURRENT_LIST_DIR}/parity_common.cmake)

function(run_predict model out_var)
  execute_process(
    COMMAND ${PREDICT} --model ${model} --input ${QUERY}
    OUTPUT_VARIABLE predict_out RESULT_VARIABLE predict_rc)
  if(NOT predict_rc EQUAL 0)
    message(FATAL_ERROR "disthd_predict failed (${predict_rc})")
  endif()
  extract_labels("${predict_out}" 1 1 labels)
  set(${out_var} "${labels}" PARENT_SCOPE)
endfunction()

function(check_match what expected actual)
  if(NOT expected STREQUAL actual)
    message(FATAL_ERROR "${what} label mismatch:\n  predict: ${expected}\n  serve:   ${actual}")
  endif()
  list(LENGTH actual n)
  if(n EQUAL 0)
    message(FATAL_ERROR "${what}: no labels extracted — output format changed?")
  endif()
  message(STATUS "${what} parity OK over ${n} queries")
endfunction()

run_predict(${MODEL} predict_labels)

if(NOT DEFINED MODEL2)
  execute_process(
    COMMAND ${SERVE} --model ${MODEL} --input ${QUERY} --max-batch 3
    OUTPUT_VARIABLE serve_out RESULT_VARIABLE serve_rc)
  if(NOT serve_rc EQUAL 0)
    message(FATAL_ERROR "disthd_serve failed (${serve_rc})")
  endif()
  extract_labels("${serve_out}" 1 0 serve_labels)
  check_match("serve/predict" "${predict_labels}" "${serve_labels}")
  return()
endif()

# ---- two models, one process ----------------------------------------------

if(NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "missing -DWORK_DIR=... (needed with MODEL2)")
endif()
run_predict(${MODEL2} predict2_labels)

# Interleave "model=a|row" / "model=b|row" requests from the query CSV
# (dropping its header — the request file is fed with --no-header).
file(STRINGS ${QUERY} query_lines)
list(POP_FRONT query_lines)  # header
set(request_lines "")
foreach(line IN LISTS query_lines)
  if(line STREQUAL "")
    continue()
  endif()
  string(APPEND request_lines "model=a|${line}\nmodel=b|${line}\n")
endforeach()
set(serve_extra "")
set(request_suffix "")
if(DEFINED POOL)
  list(APPEND serve_extra --pool ${POOL})
  set(request_suffix "pool")
  # The "#stats" responses are comments; the de-interleave below must not
  # see them as labels.
  string(APPEND request_lines "stats\n")
endif()
set(request_file ${WORK_DIR}/multi_model_requests${request_suffix}.txt)
file(WRITE ${request_file} "${request_lines}")

execute_process(
  COMMAND ${SERVE} --model a=${MODEL} --model b=${MODEL2}
          --input ${request_file} --no-header --max-batch 3 ${serve_extra}
  OUTPUT_VARIABLE serve_out RESULT_VARIABLE serve_rc)
if(NOT serve_rc EQUAL 0)
  message(FATAL_ERROR "disthd_serve (two models) failed (${serve_rc})")
endif()
extract_labels("${serve_out}" 1 0 serve_labels)

# De-interleave: responses come back in request order, so even positions
# belong to model a, odd to model b.
set(serve_a "")
set(serve_b "")
set(index 0)
foreach(label IN LISTS serve_labels)
  math(EXPR parity "${index} % 2")
  if(parity EQUAL 0)
    list(APPEND serve_a "${label}")
  else()
    list(APPEND serve_b "${label}")
  endif()
  math(EXPR index "${index} + 1")
endforeach()

check_match("model a (of two served)" "${predict_labels}" "${serve_a}")
check_match("model b (of two served)" "${predict2_labels}" "${serve_b}")
