# Runs the disthd_train -> disthd_eval CLI chain once per trainer family on
# one fixture shard and asserts the paper's Table-I method ordering on the
# reported accuracies: DistHD >= NeuralHD (small tolerance, the shards are
# sized for CI) and both dynamic encoders beat the static baseline by a
# real margin. Seeds are pinned to configurations verified bit-identical
# across -O0 / -O2 / -O3 -march=native builds, so the assertion is exact,
# not statistical.
#
# Expected -D definitions: TRAIN_TOOL EVAL_TOOL TRAIN_FILE TEST_FILE
# WORK_DIR SEED NAME.
foreach(var TRAIN_TOOL EVAL_TOOL TRAIN_FILE TEST_FILE WORK_DIR SEED NAME)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "check_table1_ordering: missing -D${var}")
  endif()
endforeach()

# Trains one family and returns the eval accuracy in integer percent
# hundredths (88.22% -> 8822), dodging CMake's integer-only math().
function(train_and_eval trainer regen_every out_var)
  set(model "${WORK_DIR}/${NAME}_${trainer}.bin")
  execute_process(
    COMMAND "${TRAIN_TOOL}" --train "${TRAIN_FILE}" --model "${model}"
            --trainer "${trainer}" --dim 500 --iterations 18
            --regen-every "${regen_every}" --seed "${SEED}" --no-header
    RESULT_VARIABLE train_rv OUTPUT_VARIABLE train_out
    ERROR_VARIABLE train_err)
  if(NOT train_rv EQUAL 0)
    message(FATAL_ERROR
      "disthd_train --trainer ${trainer} failed (${train_rv}):\n"
      "${train_out}\n${train_err}")
  endif()
  execute_process(
    COMMAND "${EVAL_TOOL}" --model "${model}" --test "${TEST_FILE}"
            --no-header
    RESULT_VARIABLE eval_rv OUTPUT_VARIABLE eval_out
    ERROR_VARIABLE eval_err)
  if(NOT eval_rv EQUAL 0)
    message(FATAL_ERROR
      "disthd_eval for ${trainer} failed (${eval_rv}):\n"
      "${eval_out}\n${eval_err}")
  endif()
  if(NOT eval_out MATCHES "accuracy   : ([0-9]+)\\.([0-9][0-9])%")
    message(FATAL_ERROR
      "no accuracy line in disthd_eval output for ${trainer}:\n${eval_out}")
  endif()
  # "1${frac} - 100" strips a leading zero without tripping octal parsing.
  math(EXPR hundredths "${CMAKE_MATCH_1} * 100 + 1${CMAKE_MATCH_2} - 100")
  message(STATUS "${NAME} ${trainer}: ${CMAKE_MATCH_1}.${CMAKE_MATCH_2}%")
  set(${out_var} ${hundredths} PARENT_SCOPE)
endfunction()

train_and_eval(disthd 6 dist_acc)
train_and_eval(neuralhd 3 neural_acc)
train_and_eval(baseline 3 base_acc)

# DistHD >= NeuralHD within 0.25 accuracy points (the pinned seeds give
# DistHD a strict win; the tolerance only absorbs future toolchain drift).
math(EXPR dist_floor "${neural_acc} - 25")
if(dist_acc LESS dist_floor)
  message(FATAL_ERROR
    "${NAME}: DistHD (${dist_acc}) fell below NeuralHD (${neural_acc}) "
    "by more than 0.25 points — Table-I ordering violated")
endif()
# Both dynamic encoders must beat the static RBF baseline by >= 0.5
# accuracy points: the regen-pays margin the shards were calibrated for
# (the CLI's static baseline persists an RBF encoder, a much stronger
# static reference than the projection baseline the in-process e2e tests
# compare against — margins here are correspondingly tighter).
math(EXPR dynamic_floor "${base_acc} + 50")
if(dist_acc LESS dynamic_floor)
  message(FATAL_ERROR
    "${NAME}: DistHD (${dist_acc}) does not clear the static baseline "
    "(${base_acc}) by 0.5 points — regeneration did not pay")
endif()
if(neural_acc LESS dynamic_floor)
  message(FATAL_ERROR
    "${NAME}: NeuralHD (${neural_acc}) does not clear the static baseline "
    "(${base_acc}) by 0.5 points — regeneration did not pay")
endif()
message(STATUS
  "${NAME}: Table-I ordering holds (dist ${dist_acc} >= neural "
  "${neural_acc} >= baseline ${base_acc} + margin)")
