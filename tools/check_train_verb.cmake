# CTest script: the train PROTOCOL VERB must reproduce the replay-mode
# (offline OnlineDistHD) fit exactly (ISSUE 9 tentpole).
#
# Two runs over the SAME 120-row labeled stream, same chunking, same
# learner shape:
#   oracle: replay mode (--train-stream) — the chunked offline pipeline
#           that predates the training plane, byte-locked by its own
#           regression tests;
#   live:   a fresh --online learner fed the identical rows as
#           `train model=online|f0,...,fN,label` protocol lines through
#           the stdio front, interleaved with predict lines, acked in
#           answer position.
# Chunk boundaries depend only on arrival order and --train-chunk (the
# trainer thread fits full chunks in order; stop() drains the tail), so
# the two --save-bundle files must be byte-identical — the verb path IS
# the offline fit, reached over the protocol.
#
#   cmake -DSERVE=<disthd_serve> -DTRAIN=<train.csv> -DQUERY=<query.csv>
#         -DWORK_DIR=<dir> -P check_train_verb.cmake

foreach(var SERVE TRAIN QUERY WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "missing -D${var}=...")
  endif()
endforeach()

# Rewrite the labeled CSV as train-verb lines (the grammar takes the label
# as the LAST cell, so the fixture rows pass through verbatim), then append
# predict lines so training and serving share one live session.
file(STRINGS ${TRAIN} train_rows)
list(POP_FRONT train_rows)  # header
list(LENGTH train_rows n_train)
set(stream "")
foreach(row IN LISTS train_rows)
  string(APPEND stream "train model=online|${row}\n")
endforeach()
file(STRINGS ${QUERY} query_rows)
list(POP_FRONT query_rows)
foreach(row IN LISTS query_rows)
  string(APPEND stream "model=online|${row}\n")
endforeach()
set(verb_stream ${WORK_DIR}/train_verb_stream.txt)
file(WRITE ${verb_stream} "${stream}")

set(oracle_bundle ${WORK_DIR}/train_verb_oracle.bin)
set(live_bundle ${WORK_DIR}/train_verb_live.bin)

execute_process(
  COMMAND ${SERVE} --train-stream ${TRAIN} --input ${QUERY}
          --train-chunk 40 --train-every 2 --dim 128 --seed 3
          --save-bundle ${oracle_bundle}
  OUTPUT_QUIET RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "replay oracle run failed (${rc})")
endif()

execute_process(
  COMMAND ${SERVE} --online online=features:6,classes:3,dim:128,seed:3
          --train-chunk 40 --input ${verb_stream} --no-header
          --save-bundle ${live_bundle}
  OUTPUT_VARIABLE live_out RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "train-verb live run failed (${rc})")
endif()

# Every train line acked in answer position with the cumulative count.
string(REGEX MATCHALL "#train model=online ingested=[0-9]+" acks "${live_out}")
list(LENGTH acks n_acks)
if(NOT n_acks EQUAL n_train)
  message(FATAL_ERROR "expected ${n_train} train acks, saw ${n_acks}")
endif()
if(NOT live_out MATCHES "#train model=online ingested=${n_train}")
  message(FATAL_ERROR "final ack does not report the full stream "
                      "(ingested=${n_train} missing)")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${oracle_bundle} ${live_bundle}
  RESULT_VARIABLE same)
if(NOT same EQUAL 0)
  message(FATAL_ERROR "bundle trained over the protocol differs from the "
                      "replay-mode oracle fit: the train verb is not the "
                      "offline OnlineDistHD pipeline")
endif()

# Train-then-predict: the live-trained bundle must serve the query stream
# exactly like the oracle bundle (redundant given byte-identity, but this
# is the user-visible contract, so pin it end to end).
set(oracle_pred ${WORK_DIR}/train_verb_oracle_pred.txt)
set(live_pred ${WORK_DIR}/train_verb_live_pred.txt)
foreach(run "${oracle_bundle};${oracle_pred}" "${live_bundle};${live_pred}")
  list(GET run 0 bundle)
  list(GET run 1 out)
  execute_process(
    COMMAND ${SERVE} --model ${bundle} --input ${QUERY}
    OUTPUT_FILE ${out} RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "serving ${bundle} failed (${rc})")
  endif()
endforeach()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${oracle_pred} ${live_pred}
  RESULT_VARIABLE same)
if(NOT same EQUAL 0)
  message(FATAL_ERROR "predictions from the verb-trained bundle differ from "
                      "the oracle bundle's")
endif()
message(STATUS "train verb OK: protocol-trained bundle and predictions are "
               "byte-identical to the replay oracle")
