// disthd_eval — evaluate a saved model bundle on a labeled CSV.
//
//   disthd_eval --model model.bin --test test.csv [--no-header] [--per-class]
#include <cstdio>

#include "metrics/confusion.hpp"
#include "tools_common.hpp"
#include "util/argparse.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace disthd;
  try {
    const util::ArgParser args(argc, argv);
    const std::string model_path = args.get("model", "");
    const std::string test_path = args.get("test", "");
    if (model_path.empty() || test_path.empty()) {
      std::fprintf(stderr,
                   "usage: disthd_eval --model model.bin --test test.csv\n");
      return 2;
    }
    const auto bundle = tools::load_bundle(model_path);
    auto test = tools::load_csv(test_path, !args.get_bool("no-header", false));
    bundle.apply_scaler(test.features);

    util::WallTimer timer;
    const auto predictions =
        bundle.classifier->predict_batch(test.features);
    const double seconds = timer.seconds();

    const auto confusion = metrics::ConfusionMatrix::from_predictions(
        predictions, test.labels, test.num_classes);
    std::printf("samples    : %zu\n", test.size());
    std::printf("accuracy   : %.2f%%\n", 100.0 * confusion.overall_accuracy());
    std::printf("sensitivity: %.3f (macro)\n", confusion.macro_sensitivity());
    std::printf("specificity: %.3f (macro)\n", confusion.macro_specificity());
    std::printf("latency    : %.3f s total, %.1f us/sample\n", seconds,
                seconds * 1e6 / static_cast<double>(test.size()));

    if (args.get_bool("per-class", false)) {
      std::printf("\nclass  recall  precision  f1\n");
      for (std::size_t c = 0; c < test.num_classes; ++c) {
        std::printf("%-6zu %-7.3f %-10.3f %.3f\n", c, confusion.sensitivity(c),
                    confusion.precision(c), confusion.f1(c));
      }
    }
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
