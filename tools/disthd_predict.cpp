// disthd_predict — classify unlabeled CSV rows with a saved model bundle.
//
//   disthd_predict --model model.bin --input features.csv
//                  [--no-header] [--top2]
//
// The input CSV contains feature columns only (no label). One prediction is
// printed per row; --top2 also prints the runner-up class and both scores.
#include <cmath>
#include <cstdio>

#include "tools_common.hpp"
#include "util/argparse.hpp"
#include "util/csv.hpp"

int main(int argc, char** argv) {
  using namespace disthd;
  try {
    const util::ArgParser args(argc, argv);
    const std::string model_path = args.get("model", "");
    const std::string input_path = args.get("input", "");
    if (model_path.empty() || input_path.empty()) {
      std::fprintf(
          stderr,
          "usage: disthd_predict --model model.bin --input features.csv\n");
      return 2;
    }
    const auto bundle = tools::load_bundle(model_path);

    const auto table =
        util::read_csv(input_path, !args.get_bool("no-header", false));
    if (table.rows.empty()) {
      std::fprintf(stderr, "error: no rows in %s\n", input_path.c_str());
      return 1;
    }
    util::Matrix features(table.rows.size(), table.rows.front().size());
    for (std::size_t r = 0; r < table.rows.size(); ++r) {
      for (std::size_t c = 0; c < table.rows[r].size(); ++c) {
        const double value = table.rows[r][c];
        features(r, c) = std::isnan(value) ? 0.0f : static_cast<float>(value);
      }
    }
    bundle.apply_scaler(features);

    if (args.get_bool("top2", false)) {
      std::printf("row,top1,score1,top2,score2\n");
      for (std::size_t r = 0; r < features.rows(); ++r) {
        const auto top2 = bundle.classifier->predict_top2(features.row(r));
        std::printf("%zu,%d,%.4f,%d,%.4f\n", r, top2.first, top2.first_score,
                    top2.second, top2.second_score);
      }
    } else {
      const auto predictions = bundle.classifier->predict_batch(features);
      std::printf("row,prediction\n");
      for (std::size_t r = 0; r < predictions.size(); ++r) {
        std::printf("%zu,%d\n", r, predictions[r]);
      }
    }
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
