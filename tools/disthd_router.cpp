// disthd_router — replicated, self-healing cross-process sharding for
// disthd_serve backends.
//
//   disthd_router --backend HOST:PORT [--backend HOST:PORT ...]
//                 [--listen PORT] [--default-model NAME] [--window K]
//                 [--replicas R] [--probe-interval-ms MS]
//                 [--probe-timeout-ms MS] [--probe-fails K]
//
// Clients speak the same v2 line protocol they would speak to one
// disthd_serve --listen shard; the router resolves each request's model=
// directive (empty = --default-model, "default" by default) and forwards
// the line VERBATIM to one of the model's replicas. A model's REPLICA SET
// is the top --replicas R backends of its rendezvous order
// (serve/routing.hpp rendezvous_rank — the same fully-specified hash an
// EnginePool uses for engine affinity, one level up), so placement is a
// pure function of (model, topology): identical across router restarts,
// and growing N backends to N+1 re-homes only ~K/(N+1) of K models.
//
// Three layers on top of plain forwarding:
//
//   Replication (--replicas R, default 1). Requests spread across the
//   live members of the replica set (per-model round-robin), under a
//   per-client version-monotonicity guarantee: once a client has seen
//   snapshot version V for a model, it is never answered from a replica
//   the router knows to be serving < V. The router learns each
//   (backend, model) high-water version from the answers that flow
//   through it; a dispatch prefers fresh-or-unknown replicas, and an
//   answer that comes back below the client's floor is retried on another
//   replica instead of delivered. When every live replica is KNOWN stale
//   the request answers "#error version_unavailable ..." rather than
//   silently rolling the client back.
//
//   Health checks. Each backend carries a second, dedicated probe
//   connection; a "stats model=<probe>" ping goes out every
//   --probe-interval-ms and must answer within --probe-timeout-ms.
//   --probe-fails consecutive misses mark the backend DOWN: its in-flight
//   requests fail over to surviving replicas (their FIFO slots are
//   replaced with discard markers so late answers from a merely-wedged
//   backend are swallowed, not mismatched), and new requests skip it. A
//   probe answer — e.g. after SIGCONT — re-admits it. A CLOSED backend
//   (crash, kill -9) fails over the same way and is re-dialed every probe
//   interval (bounded-time connect, net::tcp_connect timeout overload);
//   after a reconnect the backend stays unroutable until one probe
//   answers. With R=1 and no live replica, a model's requests answer
//   "#error backend_down model=..." until its home returns.
//
//   Topology changes. The router-level verbs
//       topology add HOST:PORT | topology remove HOST:PORT | topology show
//   grow and shrink the backend list live. Backend slots are append-only
//   with tombstones — a removed backend keeps its rendezvous index — so a
//   change re-homes EXACTLY the rendezvous re-homing set: the models
//   whose replica set differs between the old and new topology. Those
//   models' new requests are parked, their in-flight requests drain, the
//   route table switches, and the parked requests replay — no request is
//   ever answered "#error" because a topology change was in progress.
//   The admin answer ("#topology added ... rehomed=K") is delivered in
//   the admin client's answer position once the switch completes.
//
// Answer discipline mirrors the backends': every forwarded request owns
// exactly one answer line, and a client's answers arrive in ITS request
// order no matter how responses interleave across backends. The router
// keeps one pending-answer queue per client (answer order) and one per
// backend (response match order: backends answer in request order, so a
// backend's next non-header line always resolves the oldest pending
// request the router sent it).
//
// Train verbs ("train model=NAME|<features>,<label>") route by the same
// model= directive but fan out to EVERY live member of the model's
// replica set: replicated learners converge because each replica ingests
// the same row stream. The rendezvous-primary (first live replica in
// rendezvous order) answers the client's "#train ..." ack; the other
// replicas' acks are swallowed by discard FIFO slots. A train line
// re-dispatched around a failure is therefore at-least-once PER REPLICA —
// a replica that already ingested the row may see it again, shifting its
// ingested= counter but not correctness (learner chunks are row streams,
// not idempotent writes; the primary's ack always reflects the replica
// that answered it).
//
// Validation stays with the backends: the router peeks only the verb and
// model= directive (best-effort, never rejecting) and forwards malformed
// lines untouched, so the backend's "#error" answer flows back like any
// other and there is exactly one producer of protocol errors (a malformed
// train line fans out like a valid one; every replica rejects it and the
// primary's "#error" is delivered). The router answers directly only for
// what cannot cross it: "stats" WITHOUT model= fans out one line per
// served model — an unframeable response — plus the topology verbs and
// the backend_down/version_unavailable cases above. A request failed
// over to a second replica is at-least-once on the backends; predicts
// are pure reads, so only a failed-over "config" or "train" verb can
// apply twice.
//
// --listen 0 (the default) binds an ephemeral port, announced on stdout
// as "#listen port=N" — same contract as disthd_serve --listen.
#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "net/event_loop.hpp"
#include "net/line_conn.hpp"
#include "net/line_server.hpp"
#include "net/socket.hpp"
#include "serve/line_protocol.hpp"
#include "serve/routing.hpp"
#include "util/argparse.hpp"

namespace {

using namespace disthd;
using Clock = std::chrono::steady_clock;

volatile std::sig_atomic_t g_stop = 0;
void handle_stop_signal(int) { g_stop = 1; }

constexpr std::size_t kNoBackend = static_cast<std::size_t>(-1);
// Unknown-model stats answer exactly one all-zero "#stats" line over TCP —
// the cheapest request that proves the backend's serving loop is alive.
constexpr const char* kProbeLine = "stats model=__disthd_router_probe__";

// One forwarded request, shared between its client's answer queue and its
// backend's response-match queue. A queue outliving the other side (client
// gone before the backend answered, backend dead before the client was
// paid) just orphans the entry; shared_ptr keeps both walks safe.
//
// `discard` entries hold a FIFO position for a request that was failed
// over away from a wedged-but-connected backend: if that backend wakes up
// and answers, the discard swallows the late answer so the match order
// stays aligned.
struct Pending {
  enum class Kind { client, discard };
  Kind kind = Kind::client;
  std::uint64_t client_id = 0;  // LineServer session id
  bool ready = false;
  std::string answer;
  // Re-dispatch state (kind == client):
  std::string line;   // the request, verbatim, for failover/retry
  std::string model;  // resolved routing model
  bool fan_out = false;  // train verb: goes to EVERY live replica
  std::uint64_t min_version = 0;    // client's high-water at dispatch
  std::vector<std::size_t> tried;   // slots already asked (version retry)
};

// A backend SLOT. Slots are append-only: a removed backend tombstones
// (active = false) but keeps its index, so every surviving model's
// rendezvous scores — and therefore its placement — are untouched.
// "topology add" of a previously removed spec revives its old slot,
// restoring the original placement.
struct Backend {
  std::string spec;  // HOST:PORT
  bool active = true;
  std::unique_ptr<net::LineConn> conn;        // forwarded traffic
  std::unique_ptr<net::LineConn> probe_conn;  // liveness pings only
  bool routable = false;  // connected AND probes passing
  int failed_probes = 0;
  bool probe_outstanding = false;
  Clock::time_point probe_sent_at{};
  Clock::time_point next_probe_at{};
  Clock::time_point next_reconnect_at{};
  std::deque<std::shared_ptr<Pending>> awaiting;  // oldest first
  // Highest snapshot version seen per model — learned from answers,
  // cleared on disconnect (a restarted process starts its versions over).
  std::map<std::string, std::uint64_t> versions;

  bool connected() const noexcept { return conn != nullptr; }
};

struct ClientState {
  std::deque<std::shared_ptr<Pending>> answers;  // request order
  std::map<std::string, std::uint64_t> high_water;  // model -> max version
};

struct RouterConfig {
  std::string default_model = "default";
  std::size_t window = 256;
  std::size_t replicas = 1;
  int probe_interval_ms = 250;
  int probe_timeout_ms = 1000;
  int probe_fails = 3;
};

class Router {
public:
  Router(std::uint16_t port, const std::vector<std::string>& backend_specs,
         RouterConfig config)
      : config_(std::move(config)),
        server_(loop_, port,
                net::LineServer::Handlers{
                    [this](net::Session& s) { on_client_open(s); },
                    [this](net::Session& s, std::string& line) {
                      on_client_line(s, line);
                    },
                    [](net::Session&) {},
                }) {
    slots_.reserve(backend_specs.size());
    for (const auto& spec : backend_specs) {
      auto backend = std::make_unique<Backend>();
      backend->spec = spec;
      slots_.push_back(std::move(backend));
      connect_backend(slots_.size() - 1);  // throws: startup list is load-bearing
      slots_.back()->routable = true;      // the connect is the first probe
    }
  }

  std::uint16_t port() const noexcept { return server_.port(); }

  void run() {
    while (!g_stop) {
      loop_.poll_once(50);
      tick(Clock::now());
      server_.for_each_session([this](net::Session& s) { pump_client(s); });
    }
  }

private:
  // ---- routing ------------------------------------------------------------

  /// The model's replica set under the CURRENT topology, or under a
  /// hypothetical one where `flip_slot`'s active bit is inverted (how a
  /// topology change computes its re-homing set before committing).
  std::vector<std::size_t> replica_set(const std::string& model,
                                       std::size_t flip_slot = kNoBackend) const {
    std::vector<std::size_t> set;
    for (std::size_t slot : serve::rendezvous_rank(model, slots_.size())) {
      const bool active =
          slot == flip_slot ? !slots_[slot]->active : slots_[slot]->active;
      if (!active) continue;
      set.push_back(slot);
      if (set.size() == config_.replicas) break;
    }
    return set;
  }

  /// Picks the replica to ask: live members of the replica set the
  /// request hasn't tried, excluding those KNOWN to serve below the
  /// client's version floor; round-robin per model across what remains
  /// (an unknown version is tried optimistically — the retry path
  /// handles the rare stale answer and teaches us the version).
  std::size_t pick_backend(const Pending& pending, bool& any_live) {
    std::vector<std::size_t> fresh;
    any_live = false;
    for (std::size_t slot : replica_set(pending.model)) {
      const Backend& backend = *slots_[slot];
      if (!backend.routable || !backend.connected()) continue;
      any_live = true;
      if (std::find(pending.tried.begin(), pending.tried.end(), slot) !=
          pending.tried.end()) {
        continue;
      }
      const auto version = backend.versions.find(pending.model);
      if (version != backend.versions.end() &&
          version->second < pending.min_version) {
        continue;  // known stale: never let it answer this client
      }
      fresh.push_back(slot);
    }
    if (fresh.empty()) return kNoBackend;
    return fresh[round_robin_[pending.model]++ % fresh.size()];
  }

  /// Routes (or parks, during a drain that re-homes its model) one
  /// client-kind pending. Every exit leaves the pending either awaiting a
  /// backend, held, or ready with an error answer.
  void dispatch(const std::shared_ptr<Pending>& pending) {
    if (drain_ && drain_->rehome.count(pending->model) != 0) {
      held_.push_back(pending);
      return;
    }
    if (pending->fan_out) {
      dispatch_train(pending);
      return;
    }
    bool any_live = false;
    const std::size_t slot = pick_backend(*pending, any_live);
    if (slot == kNoBackend) {
      pending->ready = true;
      pending->answer = serve::format_error(
          any_live
              ? "version_unavailable model=" + pending->model +
                    " min_version=" + std::to_string(pending->min_version)
              : "backend_down model=" + pending->model);
      return;
    }
    pending->tried.push_back(slot);
    slots_[slot]->awaiting.push_back(pending);
    // May close the backend synchronously (EPIPE) — backend_lost() then
    // re-dispatches this very pending; nothing below touches it.
    slots_[slot]->conn->send_line(pending->line);
  }

  /// Train fan-out: the line goes to every live replica of its model so
  /// replicated learners ingest the same stream. Secondaries first, each
  /// holding a discard slot for its swallowed ack; the rendezvous-primary
  /// goes LAST with the client-kind pending, so a synchronous EPIPE on
  /// any send either drops only a discard (secondary) or re-dispatches
  /// this very pending through backend_lost (primary) — never both.
  void dispatch_train(const std::shared_ptr<Pending>& pending) {
    std::vector<std::size_t> live;
    for (std::size_t slot : replica_set(pending->model)) {
      const Backend& backend = *slots_[slot];
      if (backend.routable && backend.connected()) live.push_back(slot);
    }
    if (live.empty()) {
      pending->ready = true;
      pending->answer =
          serve::format_error("backend_down model=" + pending->model);
      return;
    }
    for (std::size_t i = live.size(); i-- > 1;) {
      Backend& backend = *slots_[live[i]];
      if (!backend.connected()) continue;  // lost to an earlier send's EPIPE
      auto discard = std::make_shared<Pending>();
      discard->kind = Pending::Kind::discard;
      backend.awaiting.push_back(std::move(discard));
      backend.conn->send_line(pending->line);
    }
    Backend& primary = *slots_[live[0]];
    if (!primary.connected()) {
      dispatch(pending);  // a secondary send's teardown cascaded here
      return;
    }
    primary.awaiting.push_back(pending);
    primary.conn->send_line(pending->line);
  }

  // ---- client side --------------------------------------------------------

  void on_client_open(net::Session& session) {
    session.user_data = std::make_shared<ClientState>();
    // The router owns the client-facing header; backend headers are
    // swallowed below, so clients see exactly one.
    session.send_line(serve::response_header());
  }

  void answer_now(ClientState& state, std::string answer) {
    auto pending = std::make_shared<Pending>();
    pending->ready = true;
    pending->answer = std::move(answer);
    state.answers.push_back(std::move(pending));
  }

  void on_client_line(net::Session& session, std::string& line) {
    auto state = std::static_pointer_cast<ClientState>(session.user_data);
    if (!handle_topology_verb(*state, line)) {
      std::string model;
      const serve::RouteKind kind = serve::peek_request_route(line, model);
      if (kind == serve::RouteKind::skip) return;  // no answer slot
      if (kind == serve::RouteKind::stats && model.empty()) {
        // One "#stats" line PER SERVED MODEL: the router cannot know where
        // the response ends, so the verb cannot cross process boundaries.
        answer_now(*state,
                   serve::format_error(
                       "stats without model= does not cross the router; "
                       "ask 'stats model=NAME'"));
      } else {
        if (model.empty()) model = config_.default_model;
        seen_models_.insert(model);
        auto pending = std::make_shared<Pending>();
        pending->client_id = session.id();
        pending->line = line;
        pending->model = std::move(model);
        pending->fan_out = kind == serve::RouteKind::train;
        pending->min_version = state->high_water[pending->model];
        state->answers.push_back(pending);
        dispatch(pending);
      }
    }
    if (state->answers.size() >= config_.window) session.pause_reading();
  }

  void pump_client(net::Session& session) {
    auto state = std::static_pointer_cast<ClientState>(session.user_data);
    if (!state) return;
    auto& answers = state->answers;
    while (!answers.empty() && answers.front()->ready && !session.closed()) {
      session.send_line(answers.front()->answer);
      answers.pop_front();
    }
    if (answers.size() < config_.window) session.resume_reading();
  }

  // ---- backend side -------------------------------------------------------

  /// Connects (or reconnects) both of a slot's connections. Throws on
  /// failure; callers on the reconnect path catch and re-schedule.
  void connect_backend(std::size_t slot) {
    Backend& backend = *slots_[slot];
    const auto host_port = net::parse_host_port(backend.spec);
    net::Socket traffic = net::tcp_connect(host_port.host, host_port.port,
                                           config_.probe_timeout_ms);
    net::Socket probe = net::tcp_connect(host_port.host, host_port.port,
                                         config_.probe_timeout_ms);
    backend.conn = std::make_unique<net::LineConn>(
        loop_, std::move(traffic),
        net::LineConn::Callbacks{
            [this, slot](std::string& answer) { on_backend_line(slot, answer); },
            [this, slot] { backend_lost(slot); },
        });
    backend.probe_conn = std::make_unique<net::LineConn>(
        loop_, std::move(probe),
        net::LineConn::Callbacks{
            [this, slot](std::string& answer) { on_probe_line(slot, answer); },
            [this, slot] { backend_lost(slot); },
        });
    backend.routable = false;  // a probe answer (or startup) admits it
    backend.failed_probes = 0;
    backend.probe_outstanding = false;
    backend.next_probe_at = Clock::now();
  }

  void on_backend_line(std::size_t slot, std::string& line) {
    Backend& backend = *slots_[slot];
    // Connection metadata, not an answer (sent once per backend session).
    if (line.rfind("#proto=", 0) == 0) return;
    if (backend.awaiting.empty()) {
      std::fprintf(stderr, "warning: unsolicited line from %s dropped\n",
                   backend.spec.c_str());
      return;
    }
    const auto pending = std::move(backend.awaiting.front());
    backend.awaiting.pop_front();
    if (pending->kind == Pending::Kind::discard) return;  // failed-over slot
    if (line.empty() || line[0] == '#') {
      deliver(pending, std::move(line), 0);  // errors/acks carry no version
      return;
    }
    char* end = nullptr;
    const std::uint64_t version = std::strtoull(line.c_str(), &end, 10);
    if (end == line.c_str() || *end != ',') {
      deliver(pending, std::move(line), 0);  // defensively: not "version,..."
      return;
    }
    auto& high = backend.versions[pending->model];
    high = std::max(high, version);
    if (version < pending->min_version) {
      // A replica still serving below this client's floor must not answer
      // it; now that its version is known-stale, retry elsewhere.
      dispatch(pending);
      return;
    }
    deliver(pending, std::move(line), version);
  }

  void deliver(const std::shared_ptr<Pending>& pending, std::string line,
               std::uint64_t version) {
    pending->ready = true;
    pending->answer = std::move(line);
    if (version == 0) return;
    if (net::Session* session = server_.find(pending->client_id)) {
      auto state = std::static_pointer_cast<ClientState>(session->user_data);
      auto& high = state->high_water[pending->model];
      high = std::max(high, version);
    }
  }

  void on_probe_line(std::size_t slot, std::string& line) {
    if (line.rfind("#proto=", 0) == 0) return;
    Backend& backend = *slots_[slot];
    // ANY answer on the probe connection proves the process is serving
    // now — including a late answer to a probe already counted as missed
    // (the SIGCONT-after-wedge path).
    backend.failed_probes = 0;
    backend.probe_outstanding = false;
    if (!backend.routable && backend.connected()) {
      backend.routable = true;
      std::fprintf(stderr, "backend %s re-admitted (probe answered)\n",
                   backend.spec.c_str());
    }
  }

  /// The backend's process is wedged (probes missed) or its connection is
  /// gone. Fails its in-flight client requests over to surviving
  /// replicas. `connection_lost` additionally tears both connections down
  /// and schedules re-dial; a wedged backend keeps its connections — its
  /// FIFO slots become discards so late answers stay matched.
  void fail_over(std::size_t slot, bool connection_lost) {
    Backend& backend = *slots_[slot];
    backend.routable = false;
    if (connection_lost) {
      // Move both conns out first: closing one fires the sibling's
      // on_close -> backend_lost(), which must see them already gone.
      auto traffic = std::move(backend.conn);
      auto probe = std::move(backend.probe_conn);
      auto awaiting = std::move(backend.awaiting);
      backend.awaiting.clear();
      backend.probe_outstanding = false;
      backend.failed_probes = 0;
      backend.versions.clear();  // a restarted process re-counts versions
      backend.next_reconnect_at = Clock::now();
      for (auto* conn : {traffic.get(), probe.get()}) {
        if (conn != nullptr && !conn->closed()) conn->close();
      }
      loop_.retire(std::move(traffic));
      loop_.retire(std::move(probe));
      for (const auto& pending : awaiting) {
        if (pending->kind == Pending::Kind::client) dispatch(pending);
      }
    } else {
      for (auto& entry : backend.awaiting) {
        if (entry->kind != Pending::Kind::client) continue;
        const auto pending = std::move(entry);
        entry = std::make_shared<Pending>();
        entry->kind = Pending::Kind::discard;
        dispatch(pending);
      }
    }
  }

  void backend_lost(std::size_t slot) {
    Backend& backend = *slots_[slot];
    if (!backend.conn && !backend.probe_conn) return;  // already handled
    std::fprintf(stderr, "warning: backend %s closed\n", backend.spec.c_str());
    fail_over(slot, /*connection_lost=*/true);
  }

  // ---- timers: probes, reconnects, drains ---------------------------------

  void tick(Clock::time_point now) {
    for (std::size_t slot = 0; slot < slots_.size(); ++slot) {
      Backend& backend = *slots_[slot];
      if (!backend.active && drain_slot() != slot) continue;
      if (!backend.connected()) {
        if (now >= backend.next_reconnect_at) {
          try {
            connect_backend(slot);
            std::fprintf(stderr, "backend %s reconnected, probing\n",
                         backend.spec.c_str());
          } catch (const std::exception&) {
            backend.next_reconnect_at =
                now + std::chrono::milliseconds(config_.probe_interval_ms);
          }
        }
        continue;
      }
      if (backend.probe_outstanding &&
          now - backend.probe_sent_at >=
              std::chrono::milliseconds(config_.probe_timeout_ms)) {
        backend.probe_outstanding = false;
        if (++backend.failed_probes >= config_.probe_fails &&
            backend.routable) {
          std::fprintf(stderr,
                       "warning: backend %s DOWN (%d probes missed)\n",
                       backend.spec.c_str(), backend.failed_probes);
          fail_over(slot, /*connection_lost=*/false);
        }
      }
      if (!backend.probe_outstanding && now >= backend.next_probe_at) {
        backend.probe_conn->send_line(kProbeLine);
        if (!backend.probe_conn) continue;  // send hit EPIPE -> backend_lost
        backend.probe_outstanding = true;
        backend.probe_sent_at = now;
        backend.next_probe_at =
            now + std::chrono::milliseconds(config_.probe_interval_ms);
      }
    }
    check_drain();
  }

  // ---- topology verbs -----------------------------------------------------

  struct Drain {
    std::shared_ptr<Pending> ack;  // in the admin client's answer queue
    std::set<std::string> rehome;  // models whose replica set changes
    std::size_t slot = kNoBackend;
    bool adding = false;  // apply = activate; else tombstone + teardown
  };

  std::size_t drain_slot() const {
    return drain_ && drain_->adding ? drain_->slot : kNoBackend;
  }

  std::size_t active_backends() const {
    std::size_t count = 0;
    for (const auto& backend : slots_) count += backend->active ? 1 : 0;
    return count;
  }

  /// Handles "topology ..." lines; returns false when the line is not a
  /// topology verb (and should flow through normal routing).
  bool handle_topology_verb(ClientState& state, const std::string& line) {
    std::vector<std::string> tokens;
    for (std::size_t at = 0; at < line.size();) {
      const std::size_t start = line.find_first_not_of(" \t", at);
      if (start == std::string::npos) break;
      const std::size_t end = line.find_first_of(" \t", start);
      tokens.push_back(line.substr(start, (end == std::string::npos
                                               ? line.size()
                                               : end) - start));
      at = end == std::string::npos ? line.size() : end;
    }
    if (tokens.empty() || tokens[0] != "topology") return false;

    const std::string verb = tokens.size() > 1 ? tokens[1] : "";
    if (verb == "show" && tokens.size() == 2) {
      std::string show = "#topology replicas=" +
                         std::to_string(config_.replicas) + " backends=";
      bool first = true;
      for (const auto& backend : slots_) {
        if (!backend->active) continue;
        if (!first) show += ',';
        first = false;
        show += backend->spec;
        show += backend->routable ? ":up" : ":down";
      }
      answer_now(state, std::move(show));
      return true;
    }
    if ((verb != "add" && verb != "remove") || tokens.size() != 3) {
      answer_now(state,
                 serve::format_error(
                     "topology: expected 'add HOST:PORT', 'remove "
                     "HOST:PORT', or 'show'"));
      return true;
    }
    if (drain_) {
      answer_now(state,
                 serve::format_error("topology: change already in progress"));
      return true;
    }
    const std::string& spec = tokens[2];
    try {
      net::parse_host_port(spec);
    } catch (const std::exception& error) {
      answer_now(state, serve::format_error(std::string("topology: ") +
                                            error.what()));
      return true;
    }
    if (verb == "add") {
      start_add(state, spec);
    } else {
      start_remove(state, spec);
    }
    return true;
  }

  std::size_t find_slot(const std::string& spec, bool active) const {
    for (std::size_t slot = 0; slot < slots_.size(); ++slot) {
      if (slots_[slot]->spec == spec && slots_[slot]->active == active) {
        return slot;
      }
    }
    return kNoBackend;
  }

  void start_add(ClientState& state, const std::string& spec) {
    if (find_slot(spec, /*active=*/true) != kNoBackend) {
      answer_now(state, serve::format_error("topology: backend " + spec +
                                            " already present"));
      return;
    }
    // Revive a tombstoned slot for a returning spec — its rendezvous index
    // (and therefore the placement it used to own) comes back with it.
    std::size_t slot = find_slot(spec, /*active=*/false);
    const bool appended = slot == kNoBackend;
    if (appended) {
      auto backend = std::make_unique<Backend>();
      backend->spec = spec;
      backend->active = false;
      slots_.push_back(std::move(backend));
      slot = slots_.size() - 1;
    }
    try {
      connect_backend(slot);
    } catch (const std::exception& error) {
      if (appended) slots_.pop_back();  // nothing routed there yet
      answer_now(state, serve::format_error(std::string("topology: ") +
                                            error.what()));
      return;
    }
    slots_[slot]->routable = true;  // the connect is the first probe
    begin_drain(state, slot, /*adding=*/true);
  }

  void start_remove(ClientState& state, const std::string& spec) {
    const std::size_t slot = find_slot(spec, /*active=*/true);
    if (slot == kNoBackend) {
      answer_now(state, serve::format_error("topology: backend " + spec +
                                            " is not in the topology"));
      return;
    }
    if (active_backends() == 1) {
      answer_now(state, serve::format_error(
                            "topology: cannot remove the last backend"));
      return;
    }
    begin_drain(state, slot, /*adding=*/false);
  }

  void begin_drain(ClientState& state, std::size_t slot, bool adding) {
    Drain drain;
    drain.slot = slot;
    drain.adding = adding;
    for (const auto& model : seen_models_) {
      if (replica_set(model) != replica_set(model, slot)) {
        drain.rehome.insert(model);
      }
    }
    drain.ack = std::make_shared<Pending>();
    state.answers.push_back(drain.ack);
    drain_ = std::move(drain);
    check_drain();  // often nothing is in flight: apply immediately
  }

  void check_drain() {
    if (!drain_) return;
    for (const auto& backend : slots_) {
      for (const auto& pending : backend->awaiting) {
        if (pending->kind == Pending::Kind::client &&
            drain_->rehome.count(pending->model) != 0) {
          return;  // still draining the re-homing set
        }
      }
    }
    Drain drain = std::move(*drain_);
    Backend& backend = *slots_[drain.slot];
    backend.active = drain.adding;
    if (!drain.adding && backend.connected()) {
      // Tombstoned: tear the connections down. Every client pending it
      // held was for a re-homed model, so its queue is already drained.
      fail_over(drain.slot, /*connection_lost=*/true);
    }
    drain.ack->ready = true;
    drain.ack->answer = "#topology " +
                        std::string(drain.adding ? "added " : "removed ") +
                        backend.spec +
                        " backends=" + std::to_string(active_backends()) +
                        " rehomed=" + std::to_string(drain.rehome.size());
    drain_.reset();
    auto held = std::move(held_);
    held_.clear();
    for (const auto& pending : held) dispatch(pending);
  }

  RouterConfig config_;
  net::EventLoop loop_;
  net::LineServer server_;
  std::vector<std::unique_ptr<Backend>> slots_;
  std::set<std::string> seen_models_;  // every model clients ever named
  std::map<std::string, std::uint64_t> round_robin_;
  std::optional<Drain> drain_;
  std::deque<std::shared_ptr<Pending>> held_;  // parked during a drain
};

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::ArgParser args(argc, argv);
    const auto backend_specs = args.get_all("backend");
    if (backend_specs.empty()) {
      std::fprintf(stderr,
                   "usage: disthd_router --backend HOST:PORT "
                   "[--backend HOST:PORT ...] [--listen PORT] "
                   "[--default-model NAME] [--window K] [--replicas R] "
                   "[--probe-interval-ms MS] [--probe-timeout-ms MS] "
                   "[--probe-fails K]\n");
      return 2;
    }
    const auto port = static_cast<std::uint16_t>(args.get_int("listen", 0));
    RouterConfig config;
    config.default_model = args.get("default-model", "default");
    config.window = static_cast<std::size_t>(
        std::max<long>(1, args.get_int("window", 256)));
    config.replicas = static_cast<std::size_t>(
        std::max<long>(1, args.get_int("replicas", 1)));
    config.probe_interval_ms = static_cast<int>(
        std::max<long>(10, args.get_int("probe-interval-ms", 250)));
    config.probe_timeout_ms = static_cast<int>(
        std::max<long>(10, args.get_int("probe-timeout-ms", 1000)));
    config.probe_fails = static_cast<int>(
        std::max<long>(1, args.get_int("probe-fails", 3)));

    Router router(port, backend_specs, config);
    std::signal(SIGINT, handle_stop_signal);
    std::signal(SIGTERM, handle_stop_signal);
    std::printf("#listen port=%u\n", static_cast<unsigned>(router.port()));
    std::fflush(stdout);
    std::fprintf(stderr, "routing %zu backend(s), replicas=%zu\n",
                 backend_specs.size(), config.replicas);
    router.run();
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
