// disthd_router — cross-process model sharding for disthd_serve backends.
//
//   disthd_router --backend HOST:PORT [--backend HOST:PORT ...]
//                 [--listen PORT] [--default-model NAME] [--window K]
//
// Clients speak the same v2 line protocol they would speak to one
// disthd_serve --listen shard; the router resolves each request's model=
// directive (empty = --default-model, "default" by default) and forwards
// the line VERBATIM to the backend chosen by rendezvous-hashing the
// resolved name over the backend list (serve/routing.hpp) — the exact hash
// an EnginePool uses for engine affinity, one level up. Placement is
// therefore a pure function of (model, backend count): identical across
// router restarts, and growing N backends to N+1 re-homes only ~K/(N+1)
// of K models, all onto the new backend.
//
// Answer discipline mirrors the backends': every forwarded request owns
// exactly one answer line, and a client's answers arrive in ITS request
// order no matter how responses interleave across backends. The router
// keeps one pending-answer queue per client (answer order) and one per
// backend (response match order: backends answer in request order, so a
// backend's next non-header line always resolves the oldest pending
// request the router sent it).
//
// Validation stays with the backends: the router peeks only the model=
// directive (best-effort, never rejecting) and forwards malformed lines
// untouched, so the backend's "#error" answer flows back like any other
// and there is exactly one producer of protocol errors. The router
// answers directly only for what cannot cross it: "stats" WITHOUT model=
// fans out one line per served model — an unframeable response — and a
// request routed to a backend that has died.
//
// --listen 0 (the default) binds an ephemeral port, announced on stdout
// as "#listen port=N" — same contract as disthd_serve --listen.
#include <algorithm>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "net/event_loop.hpp"
#include "net/line_conn.hpp"
#include "net/line_server.hpp"
#include "net/socket.hpp"
#include "serve/line_protocol.hpp"
#include "serve/routing.hpp"
#include "util/argparse.hpp"

namespace {

using namespace disthd;

volatile std::sig_atomic_t g_stop = 0;
void handle_stop_signal(int) { g_stop = 1; }

// One forwarded request, shared between its client's answer queue and its
// backend's response-match queue. A queue outliving the other side (client
// gone before the backend answered, backend dead before the client was
// paid) just orphans the entry; shared_ptr keeps both walks safe.
struct Pending {
  std::uint64_t client_id = 0;  // LineServer session id
  bool ready = false;
  std::string answer;
};

struct Backend {
  std::string spec;  // HOST:PORT, for error messages
  std::unique_ptr<net::LineConn> conn;
  std::deque<std::shared_ptr<Pending>> awaiting;  // oldest first
  bool dead = false;
};

struct ClientState {
  std::deque<std::shared_ptr<Pending>> answers;  // request order
};

class Router {
public:
  Router(std::uint16_t port, const std::vector<std::string>& backend_specs,
         std::string default_model, std::size_t window)
      : default_model_(std::move(default_model)),
        window_(window),
        server_(loop_, port,
                net::LineServer::Handlers{
                    [this](net::Session& s) { on_client_open(s); },
                    [this](net::Session& s, std::string& line) {
                      on_client_line(s, line);
                    },
                    [](net::Session&) {},
                }) {
    backends_.reserve(backend_specs.size());
    for (const auto& spec : backend_specs) {
      const auto host_port = net::parse_host_port(spec);
      net::Socket socket = net::tcp_connect(host_port.host, host_port.port);
      net::set_nonblocking(socket.fd());
      auto backend = std::make_unique<Backend>();
      Backend* raw = backend.get();
      raw->spec = spec;
      raw->conn = std::make_unique<net::LineConn>(
          loop_, std::move(socket),
          net::LineConn::Callbacks{
              [this, raw](std::string& line) { on_backend_line(*raw, line); },
              [this, raw] { on_backend_close(*raw); },
          });
      backends_.push_back(std::move(backend));
    }
  }

  std::uint16_t port() const noexcept { return server_.port(); }

  void run() {
    while (!g_stop) {
      loop_.poll_once(200);
      server_.for_each_session([this](net::Session& s) { pump_client(s); });
    }
  }

private:
  void on_client_open(net::Session& session) {
    session.user_data = std::make_shared<ClientState>();
    // The router owns the client-facing header; backend headers are
    // swallowed below, so clients see exactly one.
    session.send_line(serve::response_header());
  }

  void answer_now(net::Session& session, ClientState& state,
                  std::string answer) {
    auto pending = std::make_shared<Pending>();
    pending->client_id = session.id();
    pending->ready = true;
    pending->answer = std::move(answer);
    state.answers.push_back(std::move(pending));
  }

  void on_client_line(net::Session& session, std::string& line) {
    auto state = std::static_pointer_cast<ClientState>(session.user_data);
    std::string model;
    const serve::RouteKind kind = serve::peek_request_route(line, model);
    if (kind == serve::RouteKind::skip) return;  // no answer slot
    if (kind == serve::RouteKind::stats && model.empty()) {
      // One "#stats" line PER SERVED MODEL: the router cannot know where
      // the response ends, so the verb cannot cross process boundaries.
      answer_now(session, *state,
                 serve::format_error(
                     "stats without model= does not cross the router; "
                     "ask 'stats model=NAME'"));
    } else {
      if (model.empty()) model = default_model_;
      Backend& backend = *backends_[serve::rendezvous_route(
          model, backends_.size())];
      if (backend.dead) {
        answer_now(session, *state,
                   serve::format_error("backend " + backend.spec +
                                       " is down"));
      } else {
        auto pending = std::make_shared<Pending>();
        pending->client_id = session.id();
        state->answers.push_back(pending);
        backend.awaiting.push_back(std::move(pending));
        backend.conn->send_line(line);
      }
    }
    if (state->answers.size() >= window_) session.pause_reading();
  }

  void on_backend_line(Backend& backend, std::string& line) {
    // Connection metadata, not an answer (sent once per backend session).
    if (line.rfind("#proto=", 0) == 0) return;
    if (backend.awaiting.empty()) {
      std::fprintf(stderr, "warning: unsolicited line from %s dropped\n",
                   backend.spec.c_str());
      return;
    }
    const auto pending = std::move(backend.awaiting.front());
    backend.awaiting.pop_front();
    pending->ready = true;
    pending->answer = std::move(line);
  }

  void on_backend_close(Backend& backend) {
    backend.dead = true;
    // Every request in flight on this backend gets its answer slot paid
    // with an error — the clients' answer order must not stall forever.
    for (const auto& pending : backend.awaiting) {
      pending->ready = true;
      pending->answer =
          serve::format_error("backend " + backend.spec + " died");
    }
    backend.awaiting.clear();
    std::fprintf(stderr, "warning: backend %s closed\n", backend.spec.c_str());
  }

  void pump_client(net::Session& session) {
    auto state = std::static_pointer_cast<ClientState>(session.user_data);
    if (!state) return;
    auto& answers = state->answers;
    while (!answers.empty() && answers.front()->ready && !session.closed()) {
      session.send_line(answers.front()->answer);
      answers.pop_front();
    }
    if (answers.size() < window_) session.resume_reading();
  }

  std::string default_model_;
  std::size_t window_;
  net::EventLoop loop_;
  net::LineServer server_;
  std::vector<std::unique_ptr<Backend>> backends_;
};

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::ArgParser args(argc, argv);
    const auto backend_specs = args.get_all("backend");
    if (backend_specs.empty()) {
      std::fprintf(stderr,
                   "usage: disthd_router --backend HOST:PORT "
                   "[--backend HOST:PORT ...] [--listen PORT] "
                   "[--default-model NAME] [--window K]\n");
      return 2;
    }
    const auto port = static_cast<std::uint16_t>(args.get_int("listen", 0));
    const std::string default_model = args.get("default-model", "default");
    const std::size_t window = std::max<long>(1, args.get_int("window", 256));

    Router router(port, backend_specs, default_model, window);
    std::signal(SIGINT, handle_stop_signal);
    std::signal(SIGTERM, handle_stop_signal);
    std::printf("#listen port=%u\n", static_cast<unsigned>(router.port()));
    std::fflush(stdout);
    std::fprintf(stderr, "routing %zu backend(s)\n", backend_specs.size());
    router.run();
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
