// disthd_serve — concurrent inference serving over a line protocol.
//
// Static serving (a saved model bundle answers every query):
//   disthd_serve --model model.bin [--input queries.csv] [--no-header]
//                [--max-batch N] [--deadline-us U] [--workers W] [--window K]
//
// Replay serving (an OnlineDistHD keeps learning from a labeled stream
// while queries are answered; snapshots are published between chunks):
//   disthd_serve --train-stream labeled.csv [--input queries.csv]
//                [--train-chunk C] [--train-every Q] [--dim D] [--seed S]
//                [... engine flags as above]
//
// Queries are CSV feature rows (stdin when --input is omitted; "#" comments
// and blank lines are skipped). One response line is printed per query, in
// request order: "version,label,score" — version names the snapshot that
// answered, so interleaved output is attributable even while the model
// moves underneath. With no --train-stream the replay degenerates to a
// single static snapshot and the label column matches disthd_predict.
#include <chrono>
#include <cstdio>
#include <deque>
#include <fstream>
#include <iostream>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "serve/inference_engine.hpp"
#include "serve/line_protocol.hpp"
#include "serve/online_publish.hpp"
#include "tools_common.hpp"
#include "util/argparse.hpp"

namespace {

using namespace disthd;

serve::InferenceEngineConfig engine_config(const util::ArgParser& args) {
  serve::InferenceEngineConfig config;
  config.max_batch =
      static_cast<std::size_t>(args.get_int("max-batch", 64));
  config.flush_deadline =
      std::chrono::microseconds(args.get_int("deadline-us", 200));
  config.workers = static_cast<std::size_t>(args.get_int("workers", 1));
  config.queue_capacity = std::max<std::size_t>(config.max_batch * 4, 1024);
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::ArgParser args(argc, argv);
    const std::string model_path = args.get("model", "");
    const std::string train_path = args.get("train-stream", "");
    const std::string input_path = args.get("input", "");
    if (model_path.empty() == train_path.empty()) {
      std::fprintf(stderr,
                   "usage: disthd_serve (--model model.bin | --train-stream "
                   "labeled.csv) [--input queries.csv]\n");
      return 2;
    }
    const bool has_header = !args.get_bool("no-header", false);
    const std::size_t window =
        std::max<long>(1, args.get_int("window", 32));

    serve::SnapshotSlot slot;
    std::vector<float> scaler_offset;
    std::vector<float> scaler_scale;

    // Replay state: the labeled stream feeds an online learner in chunks.
    std::unique_ptr<core::OnlineDistHD> learner;
    data::Dataset stream;
    std::size_t stream_cursor = 0;
    std::uint64_t published_revision = 0;
    const std::size_t train_chunk =
        std::max<long>(1, args.get_int("train-chunk", 64));
    const std::size_t train_every = std::max<long>(
        0, args.get_int("train-every", train_path.empty() ? 0 : 32));

    auto ingest_next_chunk = [&] {
      if (!learner || stream_cursor >= stream.features.rows()) return;
      const std::size_t take =
          std::min(train_chunk, stream.features.rows() - stream_cursor);
      std::vector<std::size_t> rows(take);
      for (std::size_t i = 0; i < take; ++i) rows[i] = stream_cursor + i;
      const util::Matrix chunk = stream.features.gather_rows(rows);
      const std::span<const int> labels(stream.labels.data() + stream_cursor,
                                        take);
      learner->partial_fit(chunk, labels);
      stream_cursor += take;
      serve::publish_online(slot, *learner, published_revision);
    };

    if (!model_path.empty()) {
      auto bundle = tools::load_bundle(model_path);
      if (!bundle.scaler_offset.empty() &&
          (bundle.scaler_offset.size() != bundle.classifier->num_features() ||
           bundle.scaler_scale.size() != bundle.scaler_offset.size())) {
        throw std::runtime_error(
            "model bundle scaler does not match its classifier's feature "
            "count");
      }
      scaler_offset = bundle.scaler_offset;
      scaler_scale = bundle.scaler_scale;
      slot.publish(std::move(*bundle.classifier));
    } else {
      stream = tools::load_csv(train_path, has_header);
      core::OnlineDistHDConfig config;
      config.dim = static_cast<std::size_t>(args.get_int("dim", 256));
      config.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
      learner = std::make_unique<core::OnlineDistHD>(
          stream.features.cols(), stream.num_classes, config);
      ingest_next_chunk();  // the first snapshot must exist before serving
    }

    serve::InferenceEngine engine(slot, engine_config(args));

    std::ifstream input_file;
    if (!input_path.empty()) {
      input_file.open(input_path);
      if (!input_file) {
        std::fprintf(stderr, "error: cannot read %s\n", input_path.c_str());
        return 1;
      }
    }
    std::istream& input = input_path.empty() ? std::cin : input_file;

    std::printf("%s\n", serve::response_header());
    std::deque<std::future<serve::PredictResponse>> inflight;
    auto drain_one = [&] {
      const auto response = inflight.front().get();
      inflight.pop_front();
      std::printf("%s\n", serve::format_response(response).c_str());
    };

    std::string line;
    std::vector<float> features;
    // Same header rule as disthd_predict, for stdin and --input alike: the
    // first line is a header unless --no-header (a header's column names
    // would otherwise parse as an all-zero query and shift every response).
    bool skipped_header = !has_header;
    std::size_t queries = 0;
    while (std::getline(input, line)) {
      if (!skipped_header) {
        skipped_header = true;
        continue;
      }
      if (!serve::parse_feature_line(line, features, engine.num_features())) {
        continue;
      }
      for (std::size_t c = 0; c < scaler_offset.size(); ++c) {
        features[c] = (features[c] - scaler_offset[c]) * scaler_scale[c];
      }
      inflight.push_back(engine.submit(features));
      while (inflight.size() >= window) drain_one();
      ++queries;
      if (train_every > 0 && queries % train_every == 0) ingest_next_chunk();
    }
    while (!inflight.empty()) drain_one();
    engine.shutdown();

    const auto stats = engine.stats();
    std::fprintf(stderr,
                 "served %llu requests in %llu batches (mean batch %.2f, "
                 "largest %llu), final model version %llu\n",
                 static_cast<unsigned long long>(stats.requests),
                 static_cast<unsigned long long>(stats.batches),
                 stats.mean_batch_size(),
                 static_cast<unsigned long long>(stats.largest_batch),
                 static_cast<unsigned long long>(slot.latest_version()));
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
