// disthd_serve — concurrent multi-model inference serving over the v2 line
// protocol (see serve/line_protocol.hpp for the full grammar).
//
// Static serving (saved model bundles answer queries; --model repeats):
//   disthd_serve --model bundle.bin --model name2=bundle2.bin
//                [--default-model NAME] [--input queries.csv] [--no-header]
//                [--max-batch N] [--deadline-us U] [--workers W] [--window K]
//                [--pool P]
//                [--model-config NAME=max_batch:B,deadline_us:U,backend:X]
//
// --pool P serves through a model-affine EnginePool of P engines: each
// model routes to one engine by consistent hash of its name, so one
// model's flush deadline never stalls another's batch (P = 1, the
// default, is a single engine). --model-config overrides the engine
// batching knobs for ONE model and/or selects its scoring backend
// (backend:float|prenorm|packed — packed serves sign-quantized class
// vectors via XOR+popcount); repeatable, set before traffic starts. A
// "stats" request line answers with per-model "#stats ..." comment lines
// (batch shape, latency quantiles, flush reasons, scoring backend and
// resident snapshot bytes).
//
// Online training (the training plane, src/serve/learn/): every learner
// model accepts "train model=NAME|<features>,<label>" protocol lines, on
// stdio and --listen TCP alike, acked "#train model=... ingested=..." in
// answer position. Rows land in a BOUNDED per-model ingest ring (oldest
// rows shed visibly under overload) and a dedicated trainer thread runs
// the partial_fit/drift/publish loop, so training never blocks the
// predict hot path:
//   disthd_serve --online NAME=features:F,classes:K[,dim:D][,seed:S] ...
//                [--train-chunk C] [--train-buffer N]
//                [--train-publish-rows R] [--train-publish-ms T]
//                [--train-drift X] [--train-stall-ms S]
//                [--train-regen-chunks G]
// --train-drift X enables drift detection: after each chunk the learner's
// reservoir is probed with DistHD's own top-2 separability signal, and a
// misled fraction >= X forces an immediate regeneration + publish.
// --train-publish-rows/--train-publish-ms decouple publish cadence from
// chunk size. "stats" reports trained_rows=/publishes=/drift_regens=/
// buffer_rows= per learner model.
//
// Replay serving (the same training plane fed from a labeled FILE: one
// chunk of rows is handed to the learner per --train-every queries while
// serving, exactly like a train-verb client pacing itself; the min-max
// scaler fitted on the first chunk is folded into every snapshot):
//   disthd_serve --train-stream labeled.csv [--train-model NAME]
//                [--input queries.csv] [--train-chunk C] [--train-every Q]
//                [--dim D] [--seed S] [--save-bundle out.bin]
//                [... engine flags as above]
//
// Both modes combine: every --model registers a bundle under its name (a
// bare "--model bundle.bin" registers as "default"), --train-stream
// registers a live learner next to them, and request lines route with the
// "model=NAME|" prefix. Queries are CSV feature rows — RAW, the
// training-time scaler inside each model's snapshot is applied by the
// engine (stdin when --input is omitted; "#" comments and blank lines are
// skipped). One response line is printed per query, in request order:
// "version,label,score" extended per the v2 grammar for topk=/scores=
// requests — version names the snapshot that answered, so interleaved
// output is attributable even while a model moves underneath.
//
// A malformed or rejected request answers with one "#error <reason>"
// comment line IN ITS ANSWER POSITION and serving continues — remote (or
// piped) garbage never kills the process and never shifts another
// request's answer. A "config model=NAME [max_batch=B] [deadline_us=U]
// [backend=X]" line retunes that model's batching live (an omitted numeric
// knob reverts to the engine default) and/or re-publishes it onto another
// scoring backend, answering with a "#config ..." ack.
//
// --listen PORT serves the same protocol over TCP instead of stdio
// (serve/tcp_front.hpp): one session per connection, each with its own
// header, answer order, and backpressure window. PORT 0 binds an
// ephemeral port; either way the chosen port is announced on stdout as
// "#listen port=N" before serving starts. SIGINT/SIGTERM stop the loop
// gracefully (drain, stats to stderr, then --save-bundle as usual). With
// --train-stream, listen mode ingests the whole stream up front — there
// is no per-query replay cadence without a single stdin stream.
//
// --save-bundle writes the final snapshot (classifier + scaler) of the
// replay-trained model — or of the default model when there is no
// --train-stream — back out as a loadable bundle when serving ends. Any
// un-ingested tail of --train-stream is drained first, so the saved
// bundle always reflects the FULL stream (identical to an uninterrupted
// fit with the same chunk size), not wherever the query stream happened
// to leave the cadence.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "serve/tcp_front.hpp"

#include "serve/engine_pool.hpp"
#include "serve/learn/trainer_plane.hpp"
#include "serve/line_protocol.hpp"
#include "serve/model_registry.hpp"
#include "tools_common.hpp"
#include "util/argparse.hpp"

namespace {

using namespace disthd;

// Signal -> stop-flag bridge for --listen mode. request_stop() is an
// atomic store, safe from a handler.
serve::TcpFront* g_front = nullptr;

void handle_stop_signal(int) {
  if (g_front != nullptr) g_front->request_stop();
}

serve::EnginePoolConfig pool_config(const util::ArgParser& args,
                                    const std::string& default_model) {
  serve::EnginePoolConfig config;
  config.engines = std::max<long>(1, args.get_int("pool", 1));
  config.engine.max_batch =
      static_cast<std::size_t>(args.get_int("max-batch", 64));
  config.engine.flush_deadline =
      std::chrono::microseconds(args.get_int("deadline-us", 200));
  config.engine.workers =
      static_cast<std::size_t>(args.get_int("workers", 1));
  config.engine.queue_capacity =
      std::max<std::size_t>(config.engine.max_batch * 4, 1024);
  config.engine.default_model = default_model;
  return config;
}

/// "name=path" -> {name, path}; a bare "path" registers as "default".
std::pair<std::string, std::string> split_model_arg(const std::string& arg) {
  const auto eq = arg.find('=');
  if (eq == std::string::npos) return {"default", arg};
  if (eq == 0 || eq + 1 == arg.size()) {
    throw std::runtime_error("--model expects NAME=BUNDLE or BUNDLE, got '" +
                             arg + "'");
  }
  return {arg.substr(0, eq), arg.substr(eq + 1)};
}

/// One parsed --model-config argument: batching overrides plus (optionally)
/// the slot's scoring backend.
struct ModelConfigArg {
  std::string name;
  serve::ModelServeConfig config;
  std::optional<serve::ScoringBackend> backend;
};

/// "NAME=max_batch:B,deadline_us:U,backend:X" -> ModelConfigArg. Every knob
/// may be omitted; an omitted numeric knob inherits the engine default, an
/// omitted backend keeps the slot's current one.
ModelConfigArg parse_model_config(const std::string& arg) {
  const auto eq = arg.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 == arg.size()) {
    throw std::runtime_error(
        "--model-config expects NAME=KEY:VALUE[,KEY:VALUE], got '" + arg +
        "'");
  }
  ModelConfigArg parsed;
  parsed.name = arg.substr(0, eq);
  std::size_t pos = eq + 1;
  while (pos < arg.size()) {
    std::size_t comma = arg.find(',', pos);
    if (comma == std::string::npos) comma = arg.size();
    const std::string knob = arg.substr(pos, comma - pos);
    const auto colon = knob.find(':');
    if (colon == std::string::npos) {
      throw std::runtime_error("--model-config knob '" + knob +
                               "' is not KEY:VALUE");
    }
    const std::string key = knob.substr(0, colon);
    const std::string value_text = knob.substr(colon + 1);
    if (key == "backend") {
      const auto backend = serve::parse_backend(value_text);
      if (!backend) {
        throw std::runtime_error("--model-config knob '" + knob +
                                 "' (want backend:float|prenorm|packed)");
      }
      parsed.backend = *backend;
      pos = comma + 1;
      continue;
    }
    char* end = nullptr;
    const long value = std::strtol(value_text.c_str(), &end, 10);
    if (end == value_text.c_str() || *end != '\0') {
      throw std::runtime_error("--model-config knob '" + knob +
                               "' has a non-numeric value");
    }
    if (key == "max_batch" && value > 0) {
      parsed.config.max_batch = static_cast<std::size_t>(value);
    } else if (key == "deadline_us" && value >= 0) {
      parsed.config.flush_deadline = std::chrono::microseconds(value);
    } else {
      throw std::runtime_error(
          "--model-config knob '" + knob +
          "' (want max_batch:N>0, deadline_us:N>=0, or backend:NAME)");
    }
    pos = comma + 1;
  }
  return parsed;
}

/// One parsed --online argument: a fresh learner's shape + overrides.
struct OnlineSpec {
  std::string name;
  std::size_t num_features = 0;
  std::size_t num_classes = 0;
  std::optional<std::size_t> dim;
  std::optional<std::uint64_t> seed;
};

/// "NAME=features:F,classes:K[,dim:D][,seed:S]" -> OnlineSpec.
OnlineSpec parse_online_spec(const std::string& arg) {
  const auto eq = arg.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 == arg.size()) {
    throw std::runtime_error(
        "--online expects NAME=features:F,classes:K[,dim:D][,seed:S], got '" +
        arg + "'");
  }
  OnlineSpec spec;
  spec.name = arg.substr(0, eq);
  std::size_t pos = eq + 1;
  while (pos < arg.size()) {
    std::size_t comma = arg.find(',', pos);
    if (comma == std::string::npos) comma = arg.size();
    const std::string knob = arg.substr(pos, comma - pos);
    const auto colon = knob.find(':');
    char* end = nullptr;
    const long value =
        colon == std::string::npos
            ? 0
            : std::strtol(knob.c_str() + colon + 1, &end, 10);
    if (colon == std::string::npos || end == knob.c_str() + colon + 1 ||
        *end != '\0' || value <= 0) {
      throw std::runtime_error("--online knob '" + knob +
                               "' is not KEY:POSITIVE_INT");
    }
    const std::string key = knob.substr(0, colon);
    if (key == "features") {
      spec.num_features = static_cast<std::size_t>(value);
    } else if (key == "classes") {
      spec.num_classes = static_cast<std::size_t>(value);
    } else if (key == "dim") {
      spec.dim = static_cast<std::size_t>(value);
    } else if (key == "seed") {
      spec.seed = static_cast<std::uint64_t>(value);
    } else {
      throw std::runtime_error(
          "--online knob '" + knob +
          "' (want features:F, classes:K, dim:D, or seed:S)");
    }
    pos = comma + 1;
  }
  if (spec.num_features == 0 || spec.num_classes == 0) {
    throw std::runtime_error("--online '" + arg +
                             "' needs features:F and classes:K");
  }
  return spec;
}

/// The learner knobs shared by every --online learner (and, minus drift and
/// stall opt-ins, by the replay learner): chunking, buffering, and publish
/// cadence from the --train-* flags.
serve::learn::OnlineLearnerConfig shared_learner_config(
    const util::ArgParser& args) {
  serve::learn::OnlineLearnerConfig config;
  config.learner.dim = static_cast<std::size_t>(args.get_int("dim", 256));
  config.learner.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  config.learner.regen_every_chunks = static_cast<std::size_t>(
      std::max<long>(0, args.get_int("train-regen-chunks", 2)));
  config.chunk_rows =
      std::max<long>(1, args.get_int("train-chunk", 64));
  config.buffer_capacity = std::max<long>(
      static_cast<long>(config.chunk_rows), args.get_int("train-buffer", 4096));
  config.publish_rows =
      std::max<long>(1, args.get_int("train-publish-rows", 1));
  config.publish_interval = std::chrono::milliseconds(
      std::max<long>(0, args.get_int("train-publish-ms", 0)));
  config.stall_after = std::chrono::milliseconds(
      std::max<long>(0, args.get_int("train-stall-ms", 0)));
  const std::string drift_text = args.get("train-drift", "-1");
  char* end = nullptr;
  const double drift = std::strtod(drift_text.c_str(), &end);
  if (end == drift_text.c_str() || *end != '\0' || drift > 1.0) {
    throw std::runtime_error("--train-drift expects a fraction <= 1 "
                             "(negative disables), got '" + drift_text + "'");
  }
  config.drift.threshold = drift;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::ArgParser args(argc, argv);
    const auto model_args = args.get_all("model");
    const auto online_args = args.get_all("online");
    const std::string train_path = args.get("train-stream", "");
    const std::string input_path = args.get("input", "");
    if (model_args.empty() && train_path.empty() && online_args.empty()) {
      std::fprintf(stderr,
                   "usage: disthd_serve (--model [name=]bundle.bin)... "
                   "(--online NAME=features:F,classes:K)... "
                   "[--train-stream labeled.csv] [--input queries.csv]\n");
      return 2;
    }
    const bool has_header = !args.get_bool("no-header", false);
    const std::size_t window =
        std::max<long>(1, args.get_int("window", 32));

    serve::ModelRegistry registry;
    std::string default_model = args.get("default-model", "");

    // The training plane: per-model online learners behind the train verb.
    // Replay (--train-stream) feeds the SAME plane from a labeled file —
    // the learner slot fits the min-max scaler on its first chunk (the
    // streaming stand-in for "training time") and folds it into every
    // published snapshot, so training chunks and served queries see the
    // same normalization.
    const std::string train_model_name = args.get("train-model", "online");
    serve::learn::TrainerPlane plane(registry);
    data::Dataset stream;
    bool has_stream = false;
    std::size_t stream_cursor = 0;
    const std::size_t train_chunk =
        std::max<long>(1, args.get_int("train-chunk", 64));
    const std::size_t train_every = std::max<long>(
        0, args.get_int("train-every", train_path.empty() ? 0 : 32));

    // Push the next replay chunk into the learner's ingest ring — exactly
    // the path a train-verb client takes. The caller drains synchronously
    // at each cadence point, so by the time the next query is submitted
    // the chunk is trained and published, like the pre-plane replay loop.
    auto feed_next_chunk = [&] {
      if (!has_stream || stream_cursor >= stream.features.rows()) return;
      const std::size_t take =
          std::min(train_chunk, stream.features.rows() - stream_cursor);
      for (std::size_t i = 0; i < take; ++i) {
        plane.ingest(train_model_name, stream.features.row(stream_cursor + i),
                     stream.labels[stream_cursor + i]);
      }
      stream_cursor += take;
    };

    for (const auto& model_arg : model_args) {
      const auto [name, path] = split_model_arg(model_arg);
      auto bundle = tools::load_bundle(path);
      // Fold the bundle's training-time scaler into the snapshot: the
      // published model is self-contained and queries arrive raw. A DCL2
      // bundle also carries its scoring backend (bound before the first
      // publish) and, when packed, the authoritative quantized bits, so the
      // slot serves exactly what was saved without re-quantizing.
      auto& slot = registry.register_model(name);
      slot.set_backend(bundle.backend);
      slot.publish(std::move(*bundle.classifier),
                   std::move(bundle.scaler_offset),
                   std::move(bundle.scaler_scale),
                   std::move(bundle.packed_class_vectors));
      if (default_model.empty()) default_model = name;
    }
    if (!train_path.empty()) {
      stream = tools::load_csv(train_path, has_header);
      has_stream = true;
      serve::learn::OnlineLearnerConfig config = shared_learner_config(args);
      // Byte-identical replay: the fit sequence must depend only on the
      // stream and --train-chunk, so a chunk never exceeds the stream and
      // the ring holds the whole file (zero drops).
      config.chunk_rows = std::max<std::size_t>(
          1, std::min(train_chunk, stream.features.rows()));
      config.buffer_capacity =
          std::max(config.chunk_rows, stream.features.rows());
      plane.attach_learner(train_model_name, stream.features.cols(),
                           stream.num_classes, config);
      if (default_model.empty()) default_model = train_model_name;
      // The first snapshot (and the scaler it carries) must exist before
      // serving; drain() fits the fed chunk synchronously.
      feed_next_chunk();
      plane.drain(train_model_name);
    }
    for (const auto& online_arg : online_args) {
      const OnlineSpec spec = parse_online_spec(online_arg);
      serve::learn::OnlineLearnerConfig config = shared_learner_config(args);
      if (spec.dim) config.learner.dim = *spec.dim;
      if (spec.seed) config.learner.seed = *spec.seed;
      plane.attach_learner(spec.name, spec.num_features, spec.num_classes,
                           config);
      // A fresh learner has no snapshot until its first publish; predicts
      // before then answer "#error" like any other snapshot-less model.
      if (default_model.empty()) default_model = spec.name;
    }

    // Per-model overrides attach to the registry slots BEFORE the pool
    // spins up (engines resolve them at each model's first request). A
    // backend override re-publishes the already-registered model onto the
    // new backend (slots above published at registration time).
    for (const auto& config_arg : args.get_all("model-config")) {
      const auto parsed_config = parse_model_config(config_arg);
      const auto slot = registry.find(parsed_config.name);
      if (!slot) {
        throw std::runtime_error("--model-config names unknown model '" +
                                 parsed_config.name + "'");
      }
      registry.configure_model(parsed_config.name, parsed_config.config);
      if (parsed_config.backend) slot->set_backend(*parsed_config.backend);
    }

    serve::EnginePool engine(registry, pool_config(args, default_model));

    if (args.has("listen")) {
      // TCP mode: replay has no per-query cadence here, so the whole
      // training stream is ingested and trained before the first
      // connection; the trainer thread then serves live train verbs.
      while (has_stream && stream_cursor < stream.features.rows()) {
        feed_next_chunk();
      }
      if (has_stream) plane.drain(train_model_name);
      plane.start();
      serve::TcpFrontConfig front_config;
      front_config.port =
          static_cast<std::uint16_t>(args.get_int("listen", 0));
      front_config.window = window;
      serve::TcpFront front(registry, engine, front_config, &plane);
      g_front = &front;
      std::signal(SIGINT, handle_stop_signal);
      std::signal(SIGTERM, handle_stop_signal);
      // Announce the bound port (essential with --listen 0) before serving;
      // supervisors and tests block on this line.
      std::printf("#listen port=%u\n", static_cast<unsigned>(front.port()));
      std::fflush(stdout);
      front.run();
      g_front = nullptr;
      const auto& totals = front.totals();
      std::fprintf(stderr,
                   "listen: %llu sessions, %llu answers, %llu errors\n",
                   static_cast<unsigned long long>(totals.sessions),
                   static_cast<unsigned long long>(totals.answered),
                   static_cast<unsigned long long>(totals.errors));
      engine.shutdown();
    } else {
      std::ifstream input_file;
      if (!input_path.empty()) {
        input_file.open(input_path);
        if (!input_file) {
          std::fprintf(stderr, "error: cannot read %s\n", input_path.c_str());
          return 1;
        }
      }
      std::istream& input = input_path.empty() ? std::cin : input_file;

      // Live train verbs are fitted by the trainer thread; the replay
      // cadence below still drains synchronously, so its determinism does
      // not depend on thread timing (full chunks pop in arrival order no
      // matter which thread gets there first).
      plane.start();

      std::printf("%s\n", serve::response_header());

      // One answer slot per accepted OR rejected request, in request order: a
      // future still being served, or a line (an "#error" rejection, a
      // "#config" ack) that is already decided but must wait its turn.
      struct Pending {
        std::optional<std::future<serve::PredictResult>> result;
        std::string line;
      };
      std::deque<Pending> inflight;
      auto drain_one = [&] {
        Pending pending = std::move(inflight.front());
        inflight.pop_front();
        if (pending.result) {
          try {
            std::printf("%s\n",
                        serve::format_result(pending.result->get()).c_str());
          } catch (const std::exception& error) {
            // Accepted but unservable mid-flight: still one answer line.
            std::printf("%s\n", serve::format_error(error.what()).c_str());
          }
        } else {
          std::printf("%s\n", pending.line.c_str());
        }
      };
      auto reject = [&](const std::string& reason) {
        inflight.push_back(Pending{std::nullopt, serve::format_error(reason)});
      };

      std::string line;
      serve::ParsedRequest parsed;
      // Same header rule as disthd_predict, for stdin and --input alike: the
      // first line is a header unless --no-header (a header's column names
      // would otherwise parse as an all-zero query and shift every response).
      bool skipped_header = !has_header;
      std::size_t queries = 0;
      while (std::getline(input, line)) {
        if (!skipped_header) {
          skipped_header = true;
          continue;
        }
        bool is_request = false;
        try {
          is_request = serve::parse_request_line(line, parsed);
        } catch (const std::exception& error) {
          // A malformed line is an answered rejection, not a dead server —
          // whatever a client pipes in, every OTHER request keeps its answer.
          reject(error.what());
          continue;
        }
        if (!is_request) continue;  // blank/comment: no answer slot
        if (parsed.kind == serve::RequestKind::stats) {
          // Answer order stays deterministic: drain everything submitted
          // before the stats line, then emit one #stats comment line per
          // model (or just the named one). A named model must be registered
          // (typos answer with #error, like every other rejected request); a
          // registered model with no traffic yet reports a zero row.
          while (!inflight.empty()) drain_one();
          if (!parsed.model.empty() && !registry.find(parsed.model)) {
            std::printf("%s\n",
                        serve::format_error("stats request names unknown "
                                            "model '" +
                                            parsed.model + "'")
                            .c_str());
            continue;
          }
          auto model_stats = engine.model_stats();
          plane.annotate(model_stats);
          for (const auto& stats_line :
               serve::format_stats_lines(model_stats, parsed.model)) {
            std::printf("%s\n", stats_line.c_str());
          }
          continue;
        }
        if (parsed.kind == serve::RequestKind::train) {
          // Ingest is a bounded ring append — the ack is known immediately
          // and parks in answer order like a config ack.
          const std::string model = parsed.model.empty()
                                        ? engine.default_model()
                                        : parsed.model;
          try {
            const std::uint64_t ingested =
                plane.ingest(model, parsed.features, parsed.label);
            inflight.push_back(
                Pending{std::nullopt, serve::format_train_ack(model, ingested)});
          } catch (const std::exception& error) {
            reject(error.what());  // no learner, bad shape, bad label, ...
          }
          continue;
        }
        if (parsed.kind == serve::RequestKind::config) {
          const auto slot = registry.find(parsed.model);
          if (!slot) {
            reject("config request names unknown model '" + parsed.model + "'");
            continue;
          }
          // Takes effect now; the ack still waits its turn in answer order.
          // A backend= knob re-publishes the slot's model onto the new
          // backend — in-flight batches finish on the snapshot they loaded,
          // later ones score through the republished one.
          slot->set_serve_config(parsed.serve_config);
          engine.reconfigure_model(parsed.model);
          if (parsed.backend) slot->set_backend(*parsed.backend);
          inflight.push_back(
              Pending{std::nullopt,
                      serve::format_config_ack(parsed.model,
                                               parsed.serve_config,
                                               slot->backend())});
          continue;
        }
        serve::PredictRequest request;
        request.model = std::move(parsed.model);
        request.features = std::move(parsed.features);
        request.top_k = parsed.top_k;
        request.want_scores = parsed.want_scores;
        try {
          inflight.push_back(Pending{engine.submit(std::move(request)), {}});
        } catch (const std::exception& error) {
          reject(error.what());  // unknown model, no snapshot, bad shape, ...
          continue;
        }
        while (inflight.size() >= window) drain_one();
        ++queries;
        if (has_stream && train_every > 0 && queries % train_every == 0) {
          feed_next_chunk();
          plane.drain(train_model_name);
        }
      }
      while (!inflight.empty()) drain_one();
      engine.shutdown();
    }

    const std::string save_path = args.get("save-bundle", "");
    if (!save_path.empty()) {
      // Feed any un-ingested tail of the training stream first: the query
      // stream ending mid-cadence (or a short query file) must not leave
      // the saved bundle trained on a prefix. Same chunk size as live
      // replay, so the result is identical to an uninterrupted fit.
      while (has_stream && stream_cursor < stream.features.rows()) {
        feed_next_chunk();
      }
    }
    // Join the trainer thread and drain every learner's buffered tail
    // (full chunks in arrival order, then one final partial) — the plane
    // must be quiescent before its final state is read or saved.
    plane.stop();
    if (!save_path.empty()) {
      // The replay-trained model when there is one (saving a static bundle
      // back out unchanged is never what --save-bundle meant), otherwise
      // the default model.
      const std::string save_model =
          has_stream ? train_model_name : default_model;
      const auto snapshot = registry.current(save_model);
      if (!snapshot) {
        throw std::runtime_error("--save-bundle: model '" + save_model +
                                 "' has no snapshot");
      }
      // The backend (and for packed, the exact quantized bits) travels with
      // the bundle, so reloading serves the identical snapshot state.
      tools::save_bundle(save_path, snapshot->scaler_offset,
                         snapshot->scaler_scale, snapshot->classifier,
                         snapshot->backend, snapshot->packed_class_vectors);
      std::fprintf(stderr, "final snapshot of '%s' saved to %s\n",
                   save_model.c_str(), save_path.c_str());
    }

    const auto stats = engine.stats();
    std::uint64_t final_version = 0;
    if (const auto slot = registry.find(default_model)) {
      final_version = slot->latest_version();
    }
    std::fprintf(stderr,
                 "served %llu requests in %llu batches (mean batch %.2f, "
                 "largest %llu) across %zu models on %zu engine(s), final "
                 "'%s' version %llu\n",
                 static_cast<unsigned long long>(stats.requests),
                 static_cast<unsigned long long>(stats.batches),
                 stats.mean_batch_size(),
                 static_cast<unsigned long long>(stats.largest_batch),
                 registry.size(), engine.size(), default_model.c_str(),
                 static_cast<unsigned long long>(final_version));
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
