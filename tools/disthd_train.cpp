// disthd_train — train a DistHD classifier from a labeled CSV and save a
// deployable model bundle (scaler + dynamic encoder + class hypervectors).
//
//   disthd_train --train train.csv --model model.bin
//                [--test test.csv] [--dim 500] [--iterations 50]
//                [--regen-rate 0.10] [--regen-every 3] [--lr 1.0]
//                [--alpha 1] [--beta 2] [--theta 1] [--seed 1]
//                [--no-header] [--trainer disthd|neuralhd|baseline]
//
// CSV format: one sample per row, label (integer) in the last column.
#include <cstdio>

#include "core/baselinehd_trainer.hpp"
#include "core/disthd_trainer.hpp"
#include "core/neuralhd_trainer.hpp"
#include "tools_common.hpp"
#include "util/argparse.hpp"

int main(int argc, char** argv) {
  using namespace disthd;
  try {
    const util::ArgParser args(argc, argv);
    const std::string train_path = args.get("train", "");
    const std::string model_path = args.get("model", "");
    if (train_path.empty() || model_path.empty()) {
      std::fprintf(stderr,
                   "usage: disthd_train --train train.csv --model out.bin "
                   "[--test test.csv] [--dim N] [--iterations N] ...\n");
      return 2;
    }
    const bool has_header = !args.get_bool("no-header", false);
    auto train = tools::load_csv(train_path, has_header);
    std::printf("loaded %zu samples, %zu features, %zu classes from %s\n",
                train.size(), train.num_features(), train.num_classes,
                train_path.c_str());

    data::Scaler scaler(data::ScalerKind::min_max);
    scaler.fit(train.features);
    scaler.transform(train.features);

    std::optional<data::Dataset> test;
    if (args.has("test")) {
      test = tools::load_csv(args.get("test", ""), has_header);
      scaler.transform(test->features);
    }

    const auto dim = static_cast<std::size_t>(args.get_int("dim", 500));
    const auto iterations =
        static_cast<std::size_t>(args.get_int("iterations", 50));
    const std::string kind = args.get("trainer", "disthd");

    std::unique_ptr<core::HdcClassifier> classifier;
    double train_seconds = 0.0;
    if (kind == "disthd") {
      core::DistHDConfig config;
      config.dim = dim;
      config.iterations = iterations;
      config.learning_rate = args.get_double("lr", 1.0);
      config.stats.regen_rate = args.get_double("regen-rate", 0.10);
      config.stats.alpha = args.get_double("alpha", 1.0);
      config.stats.beta = args.get_double("beta", 2.0);
      config.stats.theta = args.get_double("theta", 1.0);
      config.regen_every =
          static_cast<std::size_t>(args.get_int("regen-every", 3));
      config.polish_epochs = 5;
      config.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
      core::DistHDTrainer trainer(config);
      classifier = std::make_unique<core::HdcClassifier>(
          trainer.fit(train, test ? &*test : nullptr));
      train_seconds = trainer.last_result().train_seconds;
      std::printf("effective dimensionality D* = %zu\n",
                  trainer.last_result().effective_dim);
    } else if (kind == "neuralhd") {
      core::NeuralHDConfig config;
      config.dim = dim;
      config.iterations = iterations;
      config.learning_rate = args.get_double("lr", 1.0);
      config.regen_rate = args.get_double("regen-rate", 0.10);
      config.regen_every =
          static_cast<std::size_t>(args.get_int("regen-every", 3));
      config.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
      core::NeuralHDTrainer trainer(config);
      classifier = std::make_unique<core::HdcClassifier>(
          trainer.fit(train, test ? &*test : nullptr));
      train_seconds = trainer.last_result().train_seconds;
    } else if (kind == "baseline") {
      core::BaselineHDConfig config;
      config.dim = dim;
      config.iterations = iterations;
      config.learning_rate = args.get_double("lr", 1.0);
      // The CLI bundle persists RBF encoders only.
      config.encoder = core::StaticEncoderKind::rbf;
      config.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
      core::BaselineHDTrainer trainer(config);
      classifier = std::make_unique<core::HdcClassifier>(
          trainer.fit(train, test ? &*test : nullptr));
      train_seconds = trainer.last_result().train_seconds;
    } else {
      std::fprintf(stderr, "unknown --trainer '%s'\n", kind.c_str());
      return 2;
    }

    std::printf("trained in %.3f s; train accuracy %.2f%%\n", train_seconds,
                100.0 * classifier->evaluate_accuracy(train));
    if (test) {
      std::printf("test accuracy %.2f%%\n",
                  100.0 * classifier->evaluate_accuracy(*test));
    }

    // Persist the scaler statistics alongside the classifier — the exact
    // fitted values, so the bundle reapplies bit-for-bit what training saw.
    tools::save_bundle(args.get("model", ""), scaler.offset(), scaler.scale(),
                       *classifier);
    std::printf("model bundle written to %s\n", model_path.c_str());
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
