#!/usr/bin/env bash
# Fetches the real UCI datasets the loaders and `data::registry` understand
# and lays them out exactly as `registry.cpp` expects under DISTHD_DATA_DIR
# (default: ./data). Entirely optional: the test suite never needs network —
# CI runs on the committed fixture shards in tests/fixtures/datasets/ — but
# with these files in place `disthd_train --dataset isolet|pamap2` trains on
# the genuine Table-I data instead of the synthetic stand-ins.
#
# Usage:
#   tools/fetch_datasets.sh [isolet|pamap2|all]   # default: all
#
# Needs: curl (or wget), unzip, and `uncompress` or gzip for the .Z files.
set -euo pipefail

DATA_DIR="${DISTHD_DATA_DIR:-./data}"
WHAT="${1:-all}"
mkdir -p "${DATA_DIR}"

fetch() { # url dest
  if command -v curl >/dev/null 2>&1; then
    curl -fL --retry 3 -o "$2" "$1"
  else
    wget -O "$2" "$1"
  fi
}

fetch_isolet() {
  # UCI ISOLET: the distribution's own split — isolet1+2+3+4.data is the
  # training set (speaker groups 1-4), isolet5.data the test set.
  local base="https://archive.ics.uci.edu/ml/machine-learning-databases/isolet"
  local f
  for f in "isolet1+2+3+4.data.Z" "isolet5.data.Z"; do
    local out="${DATA_DIR}/${f%.Z}"
    if [[ -f "${out}" ]]; then
      echo "have ${out}, skipping"
      continue
    fi
    echo "fetching ${f}..."
    fetch "${base}/${f}" "${out}.Z"
    # .Z is old-school compress; gzip -d handles it where uncompress is absent.
    if command -v uncompress >/dev/null 2>&1; then
      uncompress -f "${out}.Z"
    else
      gzip -df "${out}.Z"
    fi
  done
  echo "isolet ready: ${DATA_DIR}/isolet1+2+3+4.data + isolet5.data"
}

fetch_pamap2() {
  # UCI PAMAP2: one zip, Protocol/*.dat per subject. registry.cpp expects a
  # pre-made subject split: 101-107 concatenated as train, 108-109 as test
  # (leave-subjects-out, matching how the paper family evaluates PAMAP2).
  local url="https://archive.ics.uci.edu/ml/machine-learning-databases/00231/PAMAP2_Dataset.zip"
  local zip="${DATA_DIR}/PAMAP2_Dataset.zip"
  if [[ -f "${DATA_DIR}/pamap2_train.dat" && -f "${DATA_DIR}/pamap2_test.dat" ]]; then
    echo "have pamap2_train.dat + pamap2_test.dat, skipping"
    return
  fi
  if [[ ! -f "${zip}" ]]; then
    echo "fetching PAMAP2_Dataset.zip (~600 MB)..."
    fetch "${url}" "${zip}"
  fi
  local tmp
  tmp="$(mktemp -d)"
  unzip -q -o "${zip}" 'PAMAP2_Dataset/Protocol/*' -d "${tmp}"
  cat "${tmp}"/PAMAP2_Dataset/Protocol/subject10{1,2,3,4,5,6,7}.dat \
      > "${DATA_DIR}/pamap2_train.dat"
  cat "${tmp}"/PAMAP2_Dataset/Protocol/subject10{8,9}.dat \
      > "${DATA_DIR}/pamap2_test.dat"
  rm -rf "${tmp}"
  echo "pamap2 ready: ${DATA_DIR}/pamap2_train.dat + pamap2_test.dat"
}

case "${WHAT}" in
  isolet) fetch_isolet ;;
  pamap2) fetch_pamap2 ;;
  all)    fetch_isolet; fetch_pamap2 ;;
  *) echo "usage: $0 [isolet|pamap2|all]" >&2; exit 2 ;;
esac
echo "done. export DISTHD_DATA_DIR=${DATA_DIR} so the registry finds the files."
