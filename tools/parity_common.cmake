# Shared helper for the serve-vs-predict parity CTest scripts
# (check_serve_parity.cmake, check_replay_scaler.cmake).
#
# extract_labels(<text> <label_column> <skip_header> <out_var>): splits
# tool output into lines, drops "#" comment lines (the v2 protocol's
# response header and "#stats" lines) and the first `skip_header` remaining
# non-empty lines, and collects field `label_column` of each remaining CSV
# line. Works for both disthd_predict ("row,prediction", skip_header 1) and
# disthd_serve v2 responses ("version,label,score..." — field 1 is always
# the top-1 label; skip_header 0, the header is a comment).

function(extract_labels text label_column skip_header out_var)
  string(REPLACE "\n" ";" lines "${text}")
  set(labels "")
  set(index 0)
  foreach(line IN LISTS lines)
    if(line STREQUAL "")
      continue()
    endif()
    if(line MATCHES "^#")
      continue()
    endif()
    math(EXPR row "${index}")
    math(EXPR index "${index} + 1")
    if(row LESS ${skip_header})
      continue()
    endif()
    string(REPLACE "," ";" fields "${line}")
    list(GET fields ${label_column} label)
    list(APPEND labels "${label}")
  endforeach()
  set(${out_var} "${labels}" PARENT_SCOPE)
endfunction()
