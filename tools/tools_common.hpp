// Shared plumbing for the disthd_* command-line tools: a model container
// that bundles the feature scaler with the classifier (a deployed model is
// useless without the normalization fitted at training time), and CSV
// loading helpers.
#pragma once

#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>

#include "core/classifier.hpp"
#include "data/loaders.hpp"
#include "data/normalize.hpp"
#include "hd/packed.hpp"
#include "serve/model_snapshot.hpp"
#include "util/serialize.hpp"

namespace disthd::tools {

/// On-disk deployment bundle: min-max scaler statistics + classifier, plus
/// the serving-backend choice and (for the packed backend) the quantized
/// class vectors, so a packed model re-loads without re-quantizing.
struct ModelBundle {
  std::vector<float> scaler_offset;
  std::vector<float> scaler_scale;
  std::unique_ptr<core::HdcClassifier> classifier;
  serve::ScoringBackend backend = serve::ScoringBackend::prenorm;
  /// Non-empty only for backend == packed: the serialized bit pattern is
  /// authoritative (round-trips bit-exactly through save/load).
  hd::PackedMatrix packed_class_vectors;

  void apply_scaler(util::Matrix& features) const {
    if (scaler_offset.empty()) return;
    if (features.cols() != scaler_offset.size()) {
      throw std::runtime_error("model expects " +
                               std::to_string(scaler_offset.size()) +
                               " features, got " +
                               std::to_string(features.cols()));
    }
    for (std::size_t r = 0; r < features.rows(); ++r) {
      auto row = features.row(r);
      for (std::size_t c = 0; c < row.size(); ++c) {
        row[c] = (row[c] - scaler_offset[c]) * scaler_scale[c];
      }
    }
  }
};

/// Bundles on the default backend keep the v1 "DCLI" layout byte-for-byte;
/// a non-default backend writes the "DCL2" extension (backend name + the
/// packed payload when present) so old tools fail loudly on the magic
/// rather than misreading a quantized model.
inline void save_bundle(
    const std::string& path, const std::vector<float>& offset,
    const std::vector<float>& scale, const core::HdcClassifier& classifier,
    serve::ScoringBackend backend = serve::ScoringBackend::prenorm,
    const hd::PackedMatrix& packed_class_vectors = {}) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot write " + path);
  util::BinaryWriter writer(out);
  if (backend == serve::ScoringBackend::prenorm &&
      packed_class_vectors.empty()) {
    writer.write_magic("DCLI");
  } else {
    writer.write_magic("DCL2");
    writer.write_string(serve::to_string(backend));
    writer.write_u32(packed_class_vectors.empty() ? 0 : 1);
    if (!packed_class_vectors.empty()) packed_class_vectors.save(out);
  }
  writer.write_f32_array(offset);
  writer.write_f32_array(scale);
  classifier.save(out);
}

inline ModelBundle load_bundle(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read " + path);
  char magic[4];
  in.read(magic, 4);
  if (in.gcount() != 4) throw std::runtime_error(path + ": truncated bundle");
  ModelBundle bundle;
  util::BinaryReader reader(in);
  if (std::memcmp(magic, "DCL2", 4) == 0) {
    const std::string backend_name = reader.read_string();
    const auto backend = serve::parse_backend(backend_name);
    if (!backend) {
      throw std::runtime_error(path + ": unknown bundle backend '" +
                               backend_name + "'");
    }
    bundle.backend = *backend;
    if (reader.read_u32() != 0) {
      bundle.packed_class_vectors = hd::PackedMatrix::load(in);
    }
  } else if (std::memcmp(magic, "DCLI", 4) != 0) {
    throw std::runtime_error(path + ": bad magic tag (not a model bundle)");
  }
  bundle.scaler_offset = reader.read_f32_array();
  bundle.scaler_scale = reader.read_f32_array();
  bundle.classifier =
      std::make_unique<core::HdcClassifier>(core::HdcClassifier::load(in));
  return bundle;
}

/// Loads a labeled table, dispatching on the extension: `.data` reads the
/// UCI ISOLET format, `.dat` the PAMAP2 Protocol format, anything else a
/// CSV (header optional, label in the last column). Every CLI tool goes
/// through here, so the paper's real distribution files work everywhere a
/// CSV does.
inline data::Dataset load_csv(const std::string& path, bool has_header) {
  return data::load_auto(path, has_header);
}

}  // namespace disthd::tools
