// Shared plumbing for the disthd_* command-line tools: a model container
// that bundles the feature scaler with the classifier (a deployed model is
// useless without the normalization fitted at training time), and CSV
// loading helpers.
#pragma once

#include <fstream>
#include <stdexcept>
#include <string>

#include "core/classifier.hpp"
#include "data/loaders.hpp"
#include "data/normalize.hpp"
#include "util/serialize.hpp"

namespace disthd::tools {

/// On-disk deployment bundle: min-max scaler statistics + classifier.
struct ModelBundle {
  std::vector<float> scaler_offset;
  std::vector<float> scaler_scale;
  std::unique_ptr<core::HdcClassifier> classifier;

  void apply_scaler(util::Matrix& features) const {
    if (scaler_offset.empty()) return;
    if (features.cols() != scaler_offset.size()) {
      throw std::runtime_error("model expects " +
                               std::to_string(scaler_offset.size()) +
                               " features, got " +
                               std::to_string(features.cols()));
    }
    for (std::size_t r = 0; r < features.rows(); ++r) {
      auto row = features.row(r);
      for (std::size_t c = 0; c < row.size(); ++c) {
        row[c] = (row[c] - scaler_offset[c]) * scaler_scale[c];
      }
    }
  }
};

inline void save_bundle(const std::string& path,
                        const std::vector<float>& offset,
                        const std::vector<float>& scale,
                        const core::HdcClassifier& classifier) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot write " + path);
  util::BinaryWriter writer(out);
  writer.write_magic("DCLI");
  writer.write_f32_array(offset);
  writer.write_f32_array(scale);
  classifier.save(out);
}

inline ModelBundle load_bundle(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read " + path);
  util::BinaryReader reader(in);
  reader.expect_magic("DCLI");
  ModelBundle bundle;
  bundle.scaler_offset = reader.read_f32_array();
  bundle.scaler_scale = reader.read_f32_array();
  bundle.classifier =
      std::make_unique<core::HdcClassifier>(core::HdcClassifier::load(in));
  return bundle;
}

/// Loads a labeled CSV (header optional, label in the last column).
inline data::Dataset load_csv(const std::string& path, bool has_header) {
  return data::load_csv_labeled(path, has_header);
}

}  // namespace disthd::tools
